"""Trace analysis: critical path, per-span rollups, idle attribution.

Works on any recorded :class:`~repro.machine.trace.Trace`.  Three
questions, three entry points:

* *Where did the makespan go?* — :func:`critical_path` walks the run's
  event graph (per-processor sequencing plus send→receive edges)
  backwards from the last-finishing event, producing a chain of
  determining constraints whose segment times telescope exactly to the
  makespan.
* *What did each part of the program cost?* — :func:`by_skeleton`,
  :func:`by_instruction` and :func:`by_iteration` aggregate time,
  messages and bytes over the span frames the executors attach
  (:mod:`repro.machine.plan_exec` tags every event with
  ``skeleton → [i] instruction → iter k``).
* *Who was everyone waiting for?* — :func:`idle_attribution` charges
  each receive's blocked time to the processor it was waiting on.

Critical-path semantics
-----------------------

Each event's finish is pinned by exactly one predecessor: a receive
whose message arrived *after* the wait started is pinned by the matching
send (a **network** edge); every other event is pinned by the previous
event on its own processor (a **local** edge); a processor's first event
is pinned by time zero (**start**).  Walking these pins backwards from
the event that ends at the makespan yields a chain whose per-step
segments ``event.end - predecessor.end`` sum — telescoping — to the
makespan exactly, so ``CriticalPath.length == RunResult.makespan`` is an
invariant, not an approximation.

Send→receive matching pairs events per ``(src, dst, tag)`` channel in
record order — exact for concrete receives (the simulator's documented
FIFO rule) and a best-effort attribution under ``ANY`` wildcards or
fault-injected duplicate/dropped deliveries (the *segment arithmetic*
never depends on the match, only the blame does).
"""

from __future__ import annotations

import dataclasses
import math
from collections import defaultdict, deque
from typing import Any, Iterable

from repro.errors import MachineError
from repro.machine.cost import MachineSpec
from repro.machine.trace import Span, Trace, TraceEvent

__all__ = [
    "Rollup",
    "PathStep",
    "CriticalPath",
    "critical_path",
    "by_skeleton",
    "by_instruction",
    "by_iteration",
    "idle_attribution",
    "top_instruction_frame",
    "iteration_frame",
]

#: Trace kinds that represent wire traffic leaving a processor.
_SEND_KINDS = frozenset({"send", "retransmit"})

#: Label used for events recorded outside any span.
UNTAGGED = "(untagged)"


# --------------------------------------------------------------------------
# Span-frame helpers
# --------------------------------------------------------------------------

def top_instruction_frame(span: Span | None) -> Span | None:
    """The outermost frame of ``span`` carrying a plan-instruction index.

    For executor-tagged events this is the frame directly below the
    skeleton root: the *top-level* instruction of the plan.  ``None``
    for untagged events or spans without instruction frames.
    """
    if span is None:
        return None
    for frame in span.frames():
        if frame.instr is not None:
            return frame
    return None


def iteration_frame(span: Span | None) -> Span | None:
    """The outermost loop-iteration frame of ``span`` (or ``None``)."""
    if span is None:
        return None
    for frame in span.frames():
        if frame.iteration is not None:
            return frame
    return None


# --------------------------------------------------------------------------
# Rollups
# --------------------------------------------------------------------------

@dataclasses.dataclass
class Rollup:
    """Aggregate of the events grouped under one span key.

    ``seconds`` sums event durations (busy *and* in-event waiting);
    ``elapsed`` is the wall-clock window ``t_end - t_start`` the group
    spanned across all processors — the number comparable to a predicted
    per-instruction elapsed time.  ``messages``/``bytes`` count sends
    (including retransmits) issued inside the group.
    """

    label: str
    events: int = 0
    seconds: float = 0.0
    messages: int = 0
    bytes: int = 0
    t_start: float = math.inf
    t_end: float = -math.inf
    seconds_by_kind: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Wall-clock window of the group (0 for an empty rollup)."""
        if self.events == 0:
            return 0.0
        return self.t_end - self.t_start

    def add(self, event: TraceEvent) -> None:
        self.events += 1
        d = event.duration
        self.seconds += d
        kinds = self.seconds_by_kind
        kinds[event.kind] = kinds.get(event.kind, 0.0) + d
        if event.kind in _SEND_KINDS:
            self.messages += 1
            self.bytes += event.detail.get("nbytes", 0)
        if event.start < self.t_start:
            self.t_start = event.start
        if event.end > self.t_end:
            self.t_end = event.end


def _rollup(events: Iterable[TraceEvent], key_label) -> dict[Any, Rollup]:
    out: dict[Any, Rollup] = {}
    for event in events:
        key, label = key_label(event)
        r = out.get(key)
        if r is None:
            r = out[key] = Rollup(label)
        r.add(event)
    return out


def by_skeleton(trace: Iterable[TraceEvent]) -> dict[str, Rollup]:
    """Rollups keyed by the root span label (the skeleton/program name)."""

    def key_label(event: TraceEvent):
        span = event.span
        label = span.root.label if span is not None else UNTAGGED
        return label, label

    return _rollup(trace, key_label)


def by_instruction(trace: Iterable[TraceEvent]) -> dict[int | None, Rollup]:
    """Rollups keyed by *top-level* plan-instruction index.

    Events without an instruction frame (untagged programs, channel
    drains) land under key ``None``.
    """

    def key_label(event: TraceEvent):
        frame = top_instruction_frame(event.span)
        if frame is None:
            return None, UNTAGGED
        return frame.instr, frame.label

    return _rollup(trace, key_label)


def by_iteration(trace: Iterable[TraceEvent],
                 instr: int | None = None) -> dict[int | None, Rollup]:
    """Rollups keyed by loop-iteration number.

    ``instr`` restricts to events whose top-level instruction index
    matches (pass the index of the ``Loop``); events outside any
    iteration land under ``None``.
    """

    def key_label(event: TraceEvent):
        frame = iteration_frame(event.span)
        if frame is None:
            return None, "(no iteration)"
        return frame.iteration, frame.label

    events = trace
    if instr is not None:
        events = [e for e in trace
                  if (f := top_instruction_frame(e.span)) is not None
                  and f.instr == instr]
    return _rollup(events, key_label)


# --------------------------------------------------------------------------
# Critical path
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PathStep:
    """One link of the critical path.

    ``edge`` says what pinned this event's finish: ``"local"`` (previous
    event on the same processor), ``"network"`` (the matching send on
    another processor), or ``"start"`` (time zero).  ``seconds`` is the
    makespan segment this link accounts for
    (``event.end - predecessor.end``).
    """

    event: TraceEvent
    edge: str
    seconds: float

    @property
    def category(self) -> str:
        """Reporting bucket: the network edge, else the event kind."""
        return "network+recv" if self.edge == "network" else self.event.kind


@dataclasses.dataclass(frozen=True)
class CriticalPath:
    """The chain of determining constraints behind a run's makespan."""

    steps: tuple[PathStep, ...]  # chronological, first → last

    @property
    def length(self) -> float:
        """Sum of segment times — equals the traced makespan exactly."""
        return sum(s.seconds for s in self.steps)

    def by_category(self) -> dict[str, float]:
        """Seconds of makespan per category, largest first."""
        out: dict[str, float] = defaultdict(float)
        for s in self.steps:
            out[s.category] += s.seconds
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def top_segments(self, n: int = 10) -> list[PathStep]:
        """The ``n`` longest individual segments, longest first."""
        return sorted(self.steps, key=lambda s: -s.seconds)[:n]


def _match_sends(events: list[TraceEvent]) -> dict[int, int]:
    """Map recv-event index → matching send-event index (per-channel FIFO)."""
    pending: dict[tuple[Any, int, Any], deque[int]] = defaultdict(deque)
    match: dict[int, int] = {}
    for i, e in enumerate(events):
        if e.kind in _SEND_KINDS:
            pending[(e.pid, e.detail.get("dst"), e.detail.get("tag"))].append(i)
        elif e.kind == "recv":
            q = pending.get((e.detail.get("src"), e.pid, e.detail.get("tag")))
            if q:
                match[i] = q.popleft()
    return match


def critical_path(trace: Trace | Iterable[TraceEvent], *,
                  spec: MachineSpec) -> CriticalPath:
    """The critical path through a traced run (see module docstring).

    ``spec`` must be the machine spec the run used — its
    ``recv_overhead`` separates a receive's arrival instant from its
    completion, which decides local-vs-network pinning.
    """
    events = list(trace)
    if not events:
        raise MachineError("critical_path needs a non-empty trace")
    if isinstance(trace, Trace) and trace.dropped:
        raise MachineError(
            f"critical_path needs the complete event graph, but this "
            f"ring-buffered trace evicted {trace.dropped} events "
            f"(raise trace_limit or use a streaming sink)")
    recv_ovh = spec.recv_overhead
    per_pid_pos: dict[int, list[int]] = defaultdict(list)
    pos_of: dict[int, int] = {}
    for i, e in enumerate(events):
        lst = per_pid_pos[e.pid]
        pos_of[i] = len(lst)
        lst.append(i)
    match = _match_sends(events)

    # Start from the event that ends at the makespan (ties: last recorded).
    cur = max(range(len(events)), key=lambda i: (events[i].end, i))
    steps: list[PathStep] = []
    tol = 1e-12
    while cur is not None:
        e = events[cur]
        pred: int | None = None
        edge = "start"
        if e.kind == "recv":
            arrival = e.end - recv_ovh
            sent = match.get(cur)
            if sent is not None and arrival > e.start + tol:
                pred, edge = sent, "network"
        if pred is None:
            pos = pos_of[cur]
            if pos > 0:
                pred, edge = per_pid_pos[e.pid][pos - 1], "local"
            else:
                pred, edge = None, "start"
        anchor = events[pred].end if pred is not None else 0.0
        steps.append(PathStep(e, edge, e.end - anchor))
        cur = pred
    steps.reverse()
    return CriticalPath(tuple(steps))


# --------------------------------------------------------------------------
# Idle attribution
# --------------------------------------------------------------------------

def idle_attribution(trace: Iterable[TraceEvent], *,
                     spec: MachineSpec) -> dict[tuple[int, Any], float]:
    """Blocked-waiting seconds per ``(waiter_pid, waited_on)`` pair.

    A receive's wait is ``arrival - wait_start`` (clamped at zero),
    charged to the source processor recorded on the event; a timeout's
    whole interval is charged to the source the receive named (which may
    be the ``ANY`` wildcard).  Sorted by descending wait.
    """
    recv_ovh = spec.recv_overhead
    out: dict[tuple[int, Any], float] = defaultdict(float)
    for e in trace:
        if e.kind == "recv":
            idle = (e.end - recv_ovh) - e.start
            if idle > 0:
                out[(e.pid, e.detail.get("src"))] += idle
        elif e.kind == "timeout":
            if e.duration > 0:
                out[(e.pid, e.detail.get("src"))] += e.duration
    return dict(sorted(out.items(), key=lambda kv: -kv[1]))
