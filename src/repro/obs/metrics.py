"""Live metrics plane: registry, SLO monitors, snapshot exporters.

Where :mod:`repro.obs.sinks` and :mod:`repro.obs.analyze` are *post-hoc*
(a trace is analysed after the run ends), this module is the **live**
half of observability: long-lived components — the skeleton service, the
stream runners, the plan cache, the chaos harness — update in-process
metrics as they work, and operational decisions (latency-aware load
shedding, capacity checks, regression detection) are made *from* that
telemetry while traffic is still flowing.

Three instrument kinds, all label-aware::

    registry = MetricsRegistry()
    reqs  = registry.counter("serve_requests_total",
                             "completed requests", ("endpoint", "tenant"))
    depth = registry.gauge("serve_queue_depth", "admission queue depth")
    lat   = registry.histogram("serve_request_latency_seconds",
                               "request latency", ("endpoint",))

    reqs.labels("scan-add", "pro").inc()
    depth.set(7)
    lat.labels("scan-add").observe(0.0042)

* :class:`Counter` — monotone float, ``inc(n)``.
* :class:`Gauge` — settable float, ``set``/``inc``/``dec``, or backed by
  a callback (``set_function``) evaluated at snapshot time.
* :class:`Histogram` — cumulative exponential buckets (the conventional
  latency shape: each bucket boundary doubles), plus ``sum``/``count``
  and a nearest-bucket :meth:`Histogram.quantile` estimate.

Locking is deliberately cheap: one registry lock guards family/child
*creation* only; each child carries its own tiny lock around its one or
two field updates, so concurrent workers updating disjoint label sets
never contend.  Components treat the registry as optional — every
instrumented hot path is behind an ``if metrics is not None`` guard, and
the ``metrics_overhead/p*`` rows in ``BENCH_simulator.json`` hold the
disabled path to the same "costs nothing" standard the
``trace_overhead`` rows hold untraced tracing to.

Exports:

* :meth:`MetricsRegistry.snapshot` — a point-in-time
  :class:`MetricsSnapshot` of every series;
* :meth:`MetricsRegistry.render_prometheus` / :func:`render_prometheus`
  — Prometheus-style text exposition (``# HELP`` / ``# TYPE`` /
  ``name{label="v"} value``);
* :class:`PeriodicSnapshotter` — a background thread collecting
  snapshots on an interval, optionally streaming them as JSONL;
* :func:`metrics_artifact` — the ``repro.obs.metrics/v1`` JSON artifact
  (what ``python -m repro serve --metrics-out`` writes and the CI
  ``metrics-smoke`` job validates).

:class:`SloMonitor` sits on top: a rolling latency window with
nearest-rank p50/p99 against a target.  :class:`~repro.serve.Service`
uses it for latency-aware admission — shedding with a structured
``Rejection(reason="slo-shed")`` while the rolling p99 breaches the
target and recovering once the window clears.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from collections import deque
from typing import Any, Callable, IO, Iterable, Mapping, Sequence

from repro.errors import SclError
from repro.obs.latency import quantile

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PeriodicSnapshotter",
    "SloMonitor",
    "exponential_buckets",
    "metrics_artifact",
    "observe_fault_counters",
    "register_plan_cache_gauges",
    "render_prometheus",
]

METRICS_SCHEMA = "repro.obs.metrics/v1"


class MetricsError(SclError):
    """Raised on inconsistent registry use (type/label conflicts)."""


def exponential_buckets(start: float, factor: float,
                        count: int) -> tuple[float, ...]:
    """``count`` bucket upper bounds: ``start, start*factor, ...``.

    The implicit ``+Inf`` bucket is always appended by
    :class:`Histogram`, so ``count`` is the number of *finite* bounds.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise MetricsError(
            f"exponential_buckets needs start > 0, factor > 1, count >= 1; "
            f"got {start}, {factor}, {count}")
    return tuple(start * factor ** i for i in range(count))


#: Default latency buckets: 0.1 ms doubling up to ~13 s — the range a
#: simulated-service request can actually live in, from a cache-hit plan
#: run to a deeply queued overload victim.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(1e-4, 2.0, 17)


class _Child:
    """Shared label-child plumbing: one value cell, one tiny lock."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


class Counter(_Child):
    """A monotone counter (one label combination of a counter family)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter increments must be >= 0, "
                               f"got {amount}")
        with self._lock:
            self._value += amount


class Gauge(_Child):
    """A settable value, or a callback evaluated at snapshot time."""

    __slots__ = ("_fn",)

    def __init__(self) -> None:
        super().__init__()
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Back this gauge by ``fn`` — read fresh at every snapshot."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Cumulative-bucket histogram (one label combination of a family).

    ``buckets`` are the finite upper bounds in increasing order; the
    ``+Inf`` bucket is implicit.  :meth:`observe` is O(log buckets).
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}")
        self._lock = threading.Lock()
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        import bisect

        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts, ``+Inf`` last."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float | None:
        """Nearest-bucket quantile estimate (upper bound of the bucket
        holding the ``ceil(q * count)``-th observation), ``None`` when
        empty.  Observations in the ``+Inf`` bucket report the last
        finite bound — an underestimate, flagged by the caller if the
        distinction matters."""
        import math

        if not 0 < q <= 1:
            raise MetricsError(f"q must be in (0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return None
        rank = math.ceil(q * total)
        seen = 0
        for idx, n in enumerate(counts):
            seen += n
            if seen >= rank:
                return self.buckets[min(idx, len(self.buckets) - 1)]
        return self.buckets[-1]  # pragma: no cover - rank <= total


@dataclasses.dataclass
class _Family:
    """One named metric and its per-label-combination children."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labelnames: tuple[str, ...]
    buckets: tuple[float, ...] | None
    _children: dict[tuple[str, ...], Any] = \
        dataclasses.field(default_factory=dict)
    _lock: threading.Lock = dataclasses.field(default_factory=threading.Lock)

    def labels(self, *values: Any, **kwvalues: Any) -> Any:
        """The child for one label-value combination (created on first
        use).  Accepts positional values in ``labelnames`` order or the
        same set as keywords."""
        if kwvalues:
            if values or set(kwvalues) != set(self.labelnames):
                raise MetricsError(
                    f"{self.name}: labels() takes exactly "
                    f"{self.labelnames}, got {values!r} / {kwvalues!r}")
            values = tuple(kwvalues[n] for n in self.labelnames)
        if len(values) != len(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS)

    # Label-less families act as their own single child.
    def _solo(self) -> Any:
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._solo().set_function(fn)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def children(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time copy of every series in a registry.

    ``series`` is a tuple of plain dicts — one per label combination —
    each carrying ``name``/``type``/``help``/``labels`` plus ``value``
    (counter/gauge) or ``sum``/``count``/``buckets`` (histogram, with
    *cumulative* bucket counts keyed by upper bound, ``"+Inf"`` last).
    """

    t: float
    series: tuple[dict[str, Any], ...]

    def to_dict(self) -> dict[str, Any]:
        return {"t": round(self.t, 6), "series": list(self.series)}

    def value(self, name: str, labels: Mapping[str, str] | None = None,
              field: str = "value") -> Any:
        """Look up one series' ``field`` (``None`` when absent)."""
        want = dict(labels or {})
        for s in self.series:
            if s["name"] == name and s.get("labels", {}) == want:
                return s.get(field)
        return None


class MetricsRegistry:
    """The in-process metric store every instrumented layer shares.

    Families are created idempotently: asking twice for the same name
    returns the same family (a kind/label mismatch raises) — so layers
    can instrument independently without coordinating creation order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    def _family(self, name: str, kind: str, help: str,
                labelnames: Sequence[str],
                buckets: Sequence[float] | None = None) -> _Family:
        names = tuple(labelnames)
        with self._lock:
            fam = self._families.get(name)
            if fam is not None:
                if fam.kind != kind or fam.labelnames != names:
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{fam.kind}{fam.labelnames}, not {kind}{names}")
                return fam
            fam = _Family(name, kind, help, names,
                          tuple(buckets) if buckets else None)
            self._families[name] = fam
            return fam

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> _Family:
        return self._family(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] | None = None) -> _Family:
        bounds = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
        Histogram(bounds)  # validate eagerly, not at first labels() use
        return self._family(name, "histogram", help, labelnames, bounds)

    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register ``fn(registry)`` to run before every snapshot —
        the pull-model hook for stats kept elsewhere (cache counters)."""
        with self._lock:
            self._collectors.append(fn)

    # -- export -------------------------------------------------------------

    def snapshot(self, t: float | None = None) -> MetricsSnapshot:
        for fn in list(self._collectors):
            fn(self)
        with self._lock:
            families = list(self._families.values())
        series: list[dict[str, Any]] = []
        for fam in families:
            for key, child in fam.children():
                rec: dict[str, Any] = {
                    "name": fam.name, "type": fam.kind, "help": fam.help,
                    "labels": dict(zip(fam.labelnames, key)),
                }
                if fam.kind == "histogram":
                    counts = child.bucket_counts()
                    cum, buckets = 0, {}
                    for bound, n in zip(child.buckets, counts):
                        cum += n
                        buckets[repr(bound)] = cum
                    buckets["+Inf"] = cum + counts[-1]
                    rec["count"] = child.count
                    rec["sum"] = round(child.sum, 9)
                    rec["buckets"] = buckets
                    p50, p99 = child.quantile(0.5), child.quantile(0.99)
                    if p50 is not None:
                        rec["p50_est"] = p50
                        rec["p99_est"] = p99
                else:
                    rec["value"] = child.value
                series.append(rec)
        return MetricsSnapshot(time.time() if t is None else t,
                               tuple(series))

    def render_prometheus(self) -> str:
        return render_prometheus(self.snapshot())


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _prom_labels(labels: Mapping[str, str],
                 extra: Mapping[str, str] | None = None) -> str:
    items = {**labels, **(extra or {})}
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items.items())
    return "{" + body + "}"


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Prometheus text exposition (format 0.0.4) of one snapshot."""
    lines: list[str] = []
    seen: set[str] = set()
    for s in snapshot.series:
        name = s["name"]
        if name not in seen:
            seen.add(name)
            if s.get("help"):
                lines.append(f"# HELP {name} {s['help']}")
            lines.append(f"# TYPE {name} {s['type']}")
        labels = s.get("labels", {})
        if s["type"] == "histogram":
            for bound, cum in s["buckets"].items():
                lines.append(f"{name}_bucket"
                             f"{_prom_labels(labels, {'le': bound})} {cum}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {s['sum']}")
            lines.append(f"{name}_count{_prom_labels(labels)} {s['count']}")
        else:
            value = s["value"]
            rendered = repr(value) if isinstance(value, float) else str(value)
            lines.append(f"{name}{_prom_labels(labels)} {rendered}")
    return "\n".join(lines) + "\n"


class PeriodicSnapshotter:
    """A background thread snapshotting a registry on an interval.

    Snapshots accumulate in :attr:`snapshots`; with ``jsonl`` (a path or
    file object) each snapshot is also streamed as one JSON line the
    moment it is taken.  :meth:`stop` takes one final snapshot so the
    series always ends with the post-run state.  Usable as a context
    manager.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 interval_s: float = 0.25,
                 jsonl: "str | IO[str] | None" = None):
        if interval_s <= 0:
            raise MetricsError(f"interval_s must be > 0, got {interval_s}")
        self.registry = registry
        self.interval_s = interval_s
        self.snapshots: list[MetricsSnapshot] = []
        self._fh: IO[str] | None = None
        self._owns = False
        if isinstance(jsonl, str):
            self._fh = open(jsonl, "w", encoding="utf-8")
            self._owns = True
        elif jsonl is not None:
            self._fh = jsonl
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0 = 0.0

    def _take(self) -> None:
        snap = self.registry.snapshot(t=time.perf_counter() - self._t0)
        self.snapshots.append(snap)
        if self._fh is not None:
            self._fh.write(json.dumps(snap.to_dict(), default=repr))
            self._fh.write("\n")

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._take()

    def start(self) -> "PeriodicSnapshotter":
        if self._thread is not None:
            return self
        self._t0 = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="metrics-snapshotter")
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._take()  # final state
        if self._fh is not None:
            if self._owns:
                self._fh.close()
            else:
                self._fh.flush()

    def __enter__(self) -> "PeriodicSnapshotter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def metrics_artifact(snapshots: Sequence[MetricsSnapshot], *,
                     generated_by: str,
                     interval_s: float | None = None) -> dict[str, Any]:
    """The ``repro.obs.metrics/v1`` JSON artifact of a snapshot series.

    ``final`` is the last snapshot (the post-run totals — what the CI
    ``metrics-smoke`` job asserts against); ``snapshots`` keeps the whole
    series so the dashboard can render deltas over time.
    """
    if not snapshots:
        raise MetricsError("metrics_artifact needs at least one snapshot")
    doc: dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "generated_by": generated_by,
        "snapshot_count": len(snapshots),
        "final": snapshots[-1].to_dict(),
        "snapshots": [s.to_dict() for s in snapshots],
    }
    if interval_s is not None:
        doc["interval_s"] = interval_s
    return doc


class SloMonitor:
    """A rolling latency window scored against a p99 target.

    ``observe`` records one request latency; ``breached(now)`` answers
    "is the rolling p99 over target *right now*" — entries older than
    ``window_s`` are pruned first, so a quiet period clears the breach
    (latencies age out) exactly as sustained overload sustains it.
    Verdicts need at least ``min_samples`` live entries: an empty or
    thin window never sheds.

    The monitor is independent of any registry; when one is attached
    (:meth:`bind_gauges`) it exports its rolling state as gauges.
    """

    def __init__(self, p99_target_s: float, *, window_s: float = 2.0,
                 min_samples: int = 20):
        if p99_target_s <= 0 or window_s <= 0 or min_samples < 1:
            raise MetricsError(
                f"SloMonitor needs p99_target_s > 0, window_s > 0, "
                f"min_samples >= 1; got {p99_target_s}, {window_s}, "
                f"{min_samples}")
        self.p99_target_s = p99_target_s
        self.window_s = window_s
        self.min_samples = min_samples
        self._lock = threading.Lock()
        self._window: deque[tuple[float, float]] = deque()  # (t, latency_s)
        #: Total observations ever (not just the live window).
        self.observed = 0
        #: Number of :meth:`breached` verdicts that answered True.
        self.breach_verdicts = 0

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        window = self._window
        while window and window[0][0] < horizon:
            window.popleft()

    def observe(self, latency_s: float, now: float) -> None:
        with self._lock:
            self._window.append((now, latency_s))
            self.observed += 1
            self._prune(now)

    def rolling(self, now: float) -> dict[str, Any]:
        """Current window state: sample count, p50/p99, target, breach."""
        with self._lock:
            self._prune(now)
            lats = [lat for _, lat in self._window]
        state: dict[str, Any] = {
            "samples": len(lats),
            "min_samples": self.min_samples,
            "window_s": self.window_s,
            "p99_target_ms": round(self.p99_target_s * 1e3, 3),
        }
        if lats:
            state["p50_ms"] = round(quantile(lats, 0.5) * 1e3, 3)
            state["p99_ms"] = round(quantile(lats, 0.99) * 1e3, 3)
        state["breached"] = (len(lats) >= self.min_samples
                             and quantile(lats, 0.99) > self.p99_target_s)
        return state

    def breached(self, now: float) -> bool:
        with self._lock:
            self._prune(now)
            lats = [lat for _, lat in self._window]
            if len(lats) < self.min_samples:
                return False
            hit = quantile(lats, 0.99) > self.p99_target_s
            if hit:
                self.breach_verdicts += 1
            return hit

    def bind_gauges(self, registry: MetricsRegistry,
                    now_fn: Callable[[], float], *,
                    prefix: str = "serve_slo") -> None:
        """Export the rolling state as callback gauges on ``registry``."""
        registry.gauge(f"{prefix}_p99_target_ms",
                       "SLO p99 latency target").set(
            self.p99_target_s * 1e3)
        p99 = registry.gauge(f"{prefix}_rolling_p99_ms",
                             "rolling-window p99 latency")
        breached = registry.gauge(f"{prefix}_breached",
                                  "1 while the rolling p99 is over target")

        def _p99() -> float:
            return self.rolling(now_fn()).get("p99_ms", 0.0)

        p99.set_function(_p99)
        breached.set_function(
            lambda: 1.0 if self.rolling(now_fn())["breached"] else 0.0)


def register_plan_cache_gauges(registry: MetricsRegistry) -> None:
    """Export :func:`repro.plan.lower.plan_cache_stats` as gauges.

    Pull-model: the cache keeps its own counters (its hot path must not
    know about registries); a snapshot collector copies them into
    ``plan_cache_*`` gauges at read time.  Idempotent per registry.
    """
    from repro.plan.lower import plan_cache_stats

    if getattr(registry, "_plan_cache_bound", False):
        return
    registry._plan_cache_bound = True
    gauges = {key: registry.gauge(f"plan_cache_{key}",
                                  f"plan cache counter {key!r}")
              for key in plan_cache_stats()}

    def collect(_reg: MetricsRegistry) -> None:
        for key, value in plan_cache_stats().items():
            gauges[key].set(value)

    collect(registry)
    registry.add_collector(collect)


def observe_fault_counters(registry: MetricsRegistry,
                           counters: Mapping[str, int], *,
                           labels: Mapping[str, str] | None = None) -> None:
    """Fold one run's fault counters into ``machine_faults_total``.

    ``counters`` is the dict :func:`repro.machine.metrics.fault_counters`
    returns (``retransmits``/``timeouts``/``dropped``/``crashed``); each
    kind becomes one labelled counter series, plus any extra ``labels``
    (the chaos harness labels by app and drop rate).
    """
    label_names = ("kind", *sorted(labels or {}))
    fam = registry.counter("machine_faults_total",
                           "fault-layer events observed by the simulator",
                           label_names)
    extra = tuple((labels or {})[k] for k in label_names[1:])
    for kind, value in counters.items():
        fam.labels(kind, *extra).inc(float(value))


def iter_snapshot_dicts(source: Iterable[Mapping[str, Any]]
                        ) -> list[MetricsSnapshot]:
    """Rebuild :class:`MetricsSnapshot` objects from ``to_dict`` output
    (artifact ``snapshots`` entries or JSONL lines)."""
    out = []
    for rec in source:
        out.append(MetricsSnapshot(float(rec["t"]),
                                   tuple(dict(s) for s in rec["series"])))
    return out
