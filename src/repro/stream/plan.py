"""Stream plans: HsSkel's ``Stream`` GADT lowered onto the Plan IR.

The seed stream layer ran opaque Python callables per item; nothing
stream-shaped touched the SCL compiler, the plan optimizer, or the
vectorized data plane.  This module rebuilds streams as *plan citizens*:
a small typed IR mirroring the HsSkel constructors
(``stGen``/``stMap``/``stChunk``/``stUnChunk``/``stStop``) whose
``MapPlan`` stage executes each chunk through the full compiled path —
``scl.compile`` → ``plan.opt`` → ``plan.vexec``/``plan_exec`` — so the
per-``(expression, nprocs, opt)`` lowering cache is amortized across the
whole stream: the first chunk of a given size lowers and optimizes the
expression once, every later chunk is a cache hit.

The five constructors:

* :class:`Source` — ``stGen``: a pure step function
  ``state -> (value, state') | None`` unfolded from an initial state
  (or any iterable via :meth:`Source.of`).  Sources may be infinite.
* :class:`Chunk` — ``stChunk``: group ``n`` consecutive elements into a
  tuple (the unit of compiled execution).  The final chunk may be
  shorter.
* :class:`UnChunk` — ``stUnChunk``: flatten chunks back to elements.
* :class:`MapPlan` — ``stMap`` with a *skeleton expression*: each chunk
  of ``m`` items becomes a ParArray over an ``m``-processor simulated
  machine and runs the compiled plan.  A reducing expression (outermost
  ``Fold``) maps each chunk to one scalar, leaving the stream
  unchunked.  :class:`MapSeq` is ``stMap`` with an opaque per-item
  callable.
* :class:`Stop` — ``stStop``: a stateful stop condition
  ``(fold, init, pred)``.  Each item is folded into the accumulator and
  emitted; the stream ends as soon as ``pred(accumulator)`` holds (the
  triggering item is the last one emitted; if ``pred(init)`` already
  holds the stream is empty).  Because the fold runs *in the stream*,
  an infinite :class:`Source` terminates deterministically — in
  threaded execution the cancellation event propagates upstream to the
  generator.

Execution comes in two semantically identical forms: :meth:`StreamPlan
.run_seq` composes the stage transforms in one thread (the reference),
and :meth:`StreamPlan.run` runs one thread per stage connected by
bounded queues (backpressure), via :mod:`repro.stream._runner`.  Both
produce bit-identical output streams; the property suite in
``tests/stream/test_plan_properties.py`` holds them to that.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SkeletonError
from repro.machine import Machine, MachineSpec, PERFECT
from repro.machine.simulator import RunResult
from repro.machine.topology import FullyConnected, Ring
from repro.plan.ir import DEFAULT_FRAGMENT_OPS
from repro.scl import nodes as N
from repro.stream._runner import run_staged

__all__ = [
    "Source", "Chunk", "UnChunk", "MapSeq", "MapPlan", "Stop",
    "StreamOp", "StreamPlan", "StreamRunStats", "stream_plan",
]


@dataclasses.dataclass
class StreamRunStats:
    """Counters for one stream execution (pass to ``run``/``run_seq``).

    ``sim_events`` uses the engine-invariant definition of the perf
    harness — one event per simulated send plus one per receive — summed
    over every compiled chunk run; ``virtual_seconds`` sums the per-chunk
    makespans (chunks are independent machine runs, so this is total
    simulated compute, not a wall-clock claim).
    """

    items_in: int = 0
    items_out: int = 0
    chunks: int = 0
    plan_runs: int = 0
    sim_events: int = 0
    sim_messages: int = 0
    virtual_seconds: float = 0.0
    #: Counter children bound by :meth:`attach_metrics` (``None`` keeps
    #: every stats update registry-free).
    _m_chunks: Any = None
    _m_runs: Any = None
    _m_events: Any = None

    def attach_metrics(self, registry: Any,
                       name: str = "stream") -> "StreamRunStats":
        """Mirror chunk/run/event counts into ``registry`` as the
        ``stream_*_total{stream=name}`` counters, live (per chunk, not
        post-run).  Returns ``self`` for chaining."""
        self._m_chunks = registry.counter(
            "stream_chunks_total", "chunks formed by stream plans",
            ("stream",)).labels(name)
        self._m_runs = registry.counter(
            "stream_plan_runs_total", "compiled chunk executions",
            ("stream",)).labels(name)
        self._m_events = registry.counter(
            "stream_sim_events_total",
            "simulated events across compiled chunk runs",
            ("stream",)).labels(name)
        return self

    def tick_chunk(self) -> None:
        self.chunks += 1
        if self._m_chunks is not None:
            self._m_chunks.inc()

    def observe_run(self, result: RunResult) -> None:
        self.plan_runs += 1
        self.sim_messages += result.total_messages
        events = result.total_messages + sum(
            s.msgs_received for s in result.stats)
        self.sim_events += events
        self.virtual_seconds += result.makespan
        if self._m_runs is not None:
            self._m_runs.inc()
            self._m_events.inc(events)


class StreamOp:
    """Base class of stream-plan stages (everything but the source)."""

    __slots__ = ()


@dataclasses.dataclass(frozen=True)
class Source:
    """``stGen``: unfold a stream from a step function and initial state.

    ``step(state)`` returns ``(value, next_state)`` or ``None`` to end
    the stream.  :meth:`of` wraps a concrete iterable instead (it must
    be re-iterable — a sequence, not a generator — if the plan is run
    more than once).
    """

    step: Callable[[Any], "tuple[Any, Any] | None"] | None
    init: Any = None
    iterable: Iterable[Any] | None = None

    @classmethod
    def of(cls, iterable: Iterable[Any]) -> "Source":
        """A source over a concrete iterable."""
        return cls(step=None, iterable=iterable)

    @classmethod
    def count(cls, start: int = 0) -> "Source":
        """The infinite stream ``start, start+1, ...`` (use with
        :class:`Stop`)."""
        return cls(step=lambda i: (i, i + 1), init=start)

    def items(self) -> Iterator[Any]:
        if self.iterable is not None:
            yield from self.iterable
            return
        assert self.step is not None
        state = self.init
        while True:
            nxt = self.step(state)
            if nxt is None:
                return
            value, state = nxt
            yield value


@dataclasses.dataclass(frozen=True)
class Chunk(StreamOp):
    """``stChunk``: group ``n`` consecutive elements into a tuple."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise SkeletonError(f"Chunk size must be >= 1, got {self.n}")


@dataclasses.dataclass(frozen=True)
class UnChunk(StreamOp):
    """``stUnChunk``: flatten a stream of chunks back to elements."""


@dataclasses.dataclass(frozen=True)
class MapSeq(StreamOp):
    """``stMap`` with an opaque base-language callable (per item)."""

    fn: Callable[[Any], Any]


@dataclasses.dataclass(frozen=True)
class MapPlan(StreamOp):
    """``stMap`` with a compiled skeleton expression (per chunk).

    Each chunk of ``m`` items becomes a 1-D ParArray over an
    ``m``-processor machine (``topology`` rings or fully connects it)
    and executes through the SCL compiler — optimizer passes and the
    vectorized data plane included, per ``opt``.  Machines are created
    once per chunk size and reused; plans are cached per
    ``(expression, m, opt)`` by :mod:`repro.plan.lower`, so a stream of
    equal-size chunks lowers exactly once.
    """

    expr: N.Node
    spec: MachineSpec = PERFECT
    opt: Any = "auto"
    fragment_ops: float = DEFAULT_FRAGMENT_OPS
    topology: str = "ring"
    label: str = "stream"

    def __post_init__(self) -> None:
        if not isinstance(self.expr, N.Node):
            raise SkeletonError(
                f"MapPlan takes a skeleton expression, got {self.expr!r}")
        if self.topology not in ("ring", "full"):
            raise SkeletonError(
                f"MapPlan topology must be 'ring' or 'full', got "
                f"{self.topology!r}")

    @property
    def reduces(self) -> bool:
        """True when the expression folds each chunk to one scalar."""
        return _reduces(self.expr)

    def _machine(self, m: int) -> Machine:
        if m == 1:
            return Machine(1, spec=self.spec)
        topo = Ring(m) if self.topology == "ring" else FullyConnected(m)
        return Machine(topo, spec=self.spec)

    def run_chunk(self, chunk: Sequence[Any], machines: dict[int, Machine],
                  stats: StreamRunStats | None) -> Any:
        """Execute one chunk; returns the output chunk (or fold scalar)."""
        from repro.core.pararray import ParArray
        from repro.scl.compile import run_expression

        m = len(chunk)
        machine = machines.get(m)
        if machine is None:
            machine = machines[m] = self._machine(m)
        out, result = run_expression(
            self.expr, ParArray(list(chunk)), machine,
            fragment_default_ops=self.fragment_ops, label=self.label,
            opt=self.opt)
        if stats is not None:
            stats.observe_run(result)
        if isinstance(out, ParArray):
            return tuple(out.to_list())
        return out  # a reducing expression: one scalar per chunk


def _reduces(expr: N.Node) -> bool:
    """Does ``expr`` reduce a ParArray to a scalar (outermost fold)?"""
    if isinstance(expr, N.Fold):
        return True
    if isinstance(expr, N.Compose) and expr.steps:
        return _reduces(expr.steps[0])
    return False


@dataclasses.dataclass(frozen=True)
class Stop(StreamOp):
    """``stStop``: stateful stop condition ``(fold, init, pred)``.

    Every item is folded into the accumulator and emitted; the stream
    ends the moment ``pred(accumulator)`` holds — the triggering item is
    the *last* one emitted (and when ``pred(init)`` already holds, the
    output is empty).  The output is always a prefix of the unstopped
    stream.
    """

    fold: Callable[[Any, Any], Any]
    init: Any
    pred: Callable[[Any], bool]


@dataclasses.dataclass(frozen=True)
class StreamPlan:
    """A source plus an ordered pipeline of stream stages.

    Build with :func:`stream_plan` and the fluent combinators::

        plan = (stream_plan(Source.count())
                .chunk(8)
                .map_plan(Scan(operator.add), spec=AP1000)
                .unchunk()
                .take(100))
        out = list(plan.run())          # threaded, backpressured
        ref = list(plan.run_seq())      # sequential reference — identical

    Shape errors (``UnChunk`` without ``Chunk``, ``MapPlan`` on an
    unchunked stream, nested ``Chunk``) are raised at construction.
    """

    source: Source
    ops: tuple[StreamOp, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.source, Source):
            raise SkeletonError(
                f"StreamPlan source must be a Source, got {self.source!r}")
        chunked = False
        for op in self.ops:
            if isinstance(op, Chunk):
                if chunked:
                    raise SkeletonError(
                        "Chunk on an already-chunked stream (nested "
                        "chunking is not supported)")
                chunked = True
            elif isinstance(op, UnChunk):
                if not chunked:
                    raise SkeletonError("UnChunk on an unchunked stream")
                chunked = False
            elif isinstance(op, MapPlan):
                if not chunked:
                    raise SkeletonError(
                        "MapPlan needs a chunked stream (insert Chunk(n) "
                        "before it)")
                if op.reduces:
                    chunked = False  # each chunk folded to one scalar
            elif not isinstance(op, (MapSeq, Stop)):
                raise SkeletonError(f"unknown stream stage {op!r}")

    # -- fluent combinators -------------------------------------------------

    def _with(self, op: StreamOp) -> "StreamPlan":
        return StreamPlan(self.source, self.ops + (op,))

    def chunk(self, n: int) -> "StreamPlan":
        return self._with(Chunk(n))

    def unchunk(self) -> "StreamPlan":
        return self._with(UnChunk())

    def map_seq(self, fn: Callable[[Any], Any]) -> "StreamPlan":
        return self._with(MapSeq(fn))

    def map_plan(self, expr: N.Node, **kwargs: Any) -> "StreamPlan":
        return self._with(MapPlan(expr, **kwargs))

    def stop(self, fold: Callable[[Any, Any], Any], init: Any,
             pred: Callable[[Any], bool]) -> "StreamPlan":
        return self._with(Stop(fold, init, pred))

    def take(self, k: int) -> "StreamPlan":
        """Keep the first ``k`` items (a counting :class:`Stop`)."""
        if k < 0:
            raise SkeletonError(f"take needs k >= 0, got {k}")
        return self.stop(lambda c, _x: c + 1, 0, lambda c: c >= k)

    # -- execution ----------------------------------------------------------

    def _transforms(self, stats: StreamRunStats | None) -> list:
        transforms = []
        first = True
        for op in self.ops:
            transforms.append(_transform(op, stats, count_in=first))
            first = False
        if first and stats is not None:
            # No stages at all: still count the pass-through items.
            def ident(it: Iterator[Any]) -> Iterator[Any]:
                for x in it:
                    stats.items_in += 1
                    stats.items_out += 1
                    yield x
            transforms.append(ident)
        elif stats is not None:
            inner = transforms[-1]

            def counted(it: Iterator[Any], _inner=inner) -> Iterator[Any]:
                for x in _inner(it):
                    stats.items_out += 1
                    yield x
            transforms[-1] = counted
        return transforms

    def run_seq(self, *, stats: StreamRunStats | None = None) -> Iterator[Any]:
        """Sequential reference execution (one thread, lazy pulls)."""
        it: Iterator[Any] = self.source.items()
        for transform in self._transforms(stats):
            it = transform(it)
        return it

    def run(self, *, buffer: int = 8,
            stats: StreamRunStats | None = None,
            metrics: Any = None, name: str = "stream") -> Iterator[Any]:
        """Threaded execution: one thread per stage, bounded queues.

        Element-wise identical to :meth:`run_seq`; a satisfied
        :class:`Stop` (or a consumer that stops early, or a stage
        failure) cancels the source, so infinite generators terminate.

        ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
        exports chunk/run/event counters via
        :meth:`StreamRunStats.attach_metrics` plus live
        ``stream_queue_depth{stream, stage}`` occupancy gauges — one
        per inter-stage queue — labelled by ``name``.
        """
        on_depth = None
        if metrics is not None and stats is None:
            stats = StreamRunStats()
        transforms = self._transforms(stats)
        if metrics is not None:
            stats.attach_metrics(metrics, name=name)
            depth = metrics.gauge(
                "stream_queue_depth",
                "inter-stage bounded-queue occupancy",
                ("stream", "stage"))
            gauges = [depth.labels(name, str(i))
                      for i in range(len(transforms) + 1)]

            def on_depth(stage: int, size: int,
                         _g: list = gauges) -> None:
                _g[stage].set(size)

        return run_staged(self.source.items(), transforms,
                          buffer=buffer, on_depth=on_depth)


def _transform(op: StreamOp, stats: StreamRunStats | None,
               count_in: bool):
    """The generator transform of one stage (fresh closure per run)."""

    def tick_in(x: Any) -> Any:
        if stats is not None and count_in:
            stats.items_in += 1
        return x

    if isinstance(op, Chunk):
        n = op.n

        def chunk_t(it: Iterator[Any]) -> Iterator[Any]:
            buf: list[Any] = []
            for x in it:
                buf.append(tick_in(x))
                if len(buf) == n:
                    if stats is not None:
                        stats.tick_chunk()
                    yield tuple(buf)
                    buf = []
            if buf:
                if stats is not None:
                    stats.tick_chunk()
                yield tuple(buf)
        return chunk_t

    if isinstance(op, UnChunk):
        def unchunk_t(it: Iterator[Any]) -> Iterator[Any]:
            for chunk in it:
                tick_in(chunk)
                yield from chunk
        return unchunk_t

    if isinstance(op, MapSeq):
        fn = op.fn

        def map_t(it: Iterator[Any]) -> Iterator[Any]:
            for x in it:
                yield fn(tick_in(x))
        return map_t

    if isinstance(op, MapPlan):
        def plan_t(it: Iterator[Any], _op: MapPlan = op) -> Iterator[Any]:
            machines: dict[int, Machine] = {}
            for chunk in it:
                yield _op.run_chunk(tick_in(chunk), machines, stats)
        return plan_t

    if isinstance(op, Stop):
        fold, init, pred = op.fold, op.init, op.pred

        def stop_t(it: Iterator[Any]) -> Iterator[Any]:
            acc = init
            if pred(acc):
                return
            for x in it:
                acc = fold(acc, tick_in(x))
                yield x
                if pred(acc):
                    return
        return stop_t

    raise SkeletonError(f"unknown stream stage {op!r}")  # pragma: no cover


def stream_plan(source: "Source | Iterable[Any]") -> StreamPlan:
    """Start a :class:`StreamPlan` from a :class:`Source` or iterable."""
    if not isinstance(source, Source):
        source = Source.of(source)
    return StreamPlan(source)
