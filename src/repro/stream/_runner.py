"""Threaded stage runner shared by thread pipelines and stream plans.

A *staged stream* is a source iterable pushed through an ordered list of
**transforms** — generator functions ``Iterator -> Iterator`` — each
running in its own thread, connected by bounded queues (backpressure).
:func:`run_staged` is the transport; the transforms carry all semantics,
so the sequential composition of the same transforms (no threads, no
queues) is the *reference executor* and the two are element-wise
identical by construction.

Failure and cancellation semantics (the part the seed pipeline got
wrong):

* When a stage raises, a **poison** marker is forwarded downstream
  *immediately* — ahead of the end-of-stream sentinel — so downstream
  stages stop computing at the failure point instead of chewing through
  every in-flight item.
* The shared **cancel** event is set on any failure and on any early
  stage exit (a stop condition that truncates the stream), so the
  source stops producing: an infinite generator upstream of a failure
  or a satisfied stop condition terminates instead of being drained
  forever.
* Every stage still drains its input queue to the sentinel before
  exiting, so upstream ``put`` calls can never block forever.
* After all threads join, the **earliest failure by stage order** is
  raised — the source counts as stage ``-1`` — not whichever thread
  happened to lose the race into a shared list.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Iterable, Iterator

__all__ = ["run_staged", "Transform"]

#: A stage body: consumes an input iterator, yields the stage's output.
Transform = Callable[[Iterator[Any]], Iterator[Any]]

_SENTINEL = object()  # clean end of stream
_POISON = object()    # a stage upstream failed; stop at this point


class _QueueIter:
    """Iterate a stage's input queue up to the sentinel (or a poison)."""

    __slots__ = ("_q", "poisoned", "_stopped", "_eos")

    def __init__(self, q: "queue.Queue[Any]") -> None:
        self._q = q
        self.poisoned = False
        self._stopped = False  # this iterator stopped yielding
        self._eos = False      # the sentinel itself was consumed

    def __iter__(self) -> "_QueueIter":
        return self

    def __next__(self) -> Any:
        if self._stopped:
            raise StopIteration
        item = self._q.get()
        if item is _SENTINEL:
            self._stopped = self._eos = True
            raise StopIteration
        if item is _POISON:
            # Stop yielding; the upstream sentinel is still in flight and
            # is collected by :meth:`drain`.
            self.poisoned = True
            self._stopped = True
            raise StopIteration
        return item

    def drain(self) -> None:
        """Consume the rest of the input (to the sentinel) so upstream
        ``put`` calls never block forever.  Poison seen while draining is
        remembered but not forwarded — the caller already decided how to
        finish."""
        self._stopped = True
        while not self._eos:
            item = self._q.get()
            if item is _SENTINEL:
                self._eos = True
            elif item is _POISON:
                self.poisoned = True

    @property
    def exhausted(self) -> bool:
        return self._stopped


def run_staged(source: Iterable[Any], transforms: list[Transform], *,
               buffer: int = 8,
               on_depth: Callable[[int, int], None] | None = None
               ) -> Iterator[Any]:
    """Run ``source`` through ``transforms``, one thread per stage.

    Yields the final stage's output in order.  Output is element-wise
    identical to composing the transforms sequentially over ``source``;
    only timing changes (stage overlap).  See the module docstring for
    the failure/cancellation contract.

    ``on_depth(stage, depth)`` — when given — observes the occupancy of
    each inter-stage queue after every put into it (stage ``i`` is the
    queue *feeding* transform ``i``; ``len(transforms)`` is the output
    queue).  It runs on producer threads and must be cheap and
    exception-free; metrics gauges are the intended consumer.
    """
    if buffer <= 0:
        raise ValueError(f"buffer must be positive, got {buffer}")
    if not transforms:
        yield from source
        return

    queues: list[queue.Queue] = [queue.Queue(maxsize=buffer)
                                 for _ in range(len(transforms) + 1)]
    cancel = threading.Event()
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def fail(order: int, exc: BaseException) -> None:
        with failures_lock:
            failures.setdefault(order, exc)
        cancel.set()

    def feeder() -> None:
        try:
            for x in source:
                if cancel.is_set():
                    break
                queues[0].put(x)
                if on_depth is not None:
                    on_depth(0, queues[0].qsize())
        except BaseException as exc:
            fail(-1, exc)
            queues[0].put(_POISON)
        finally:
            queues[0].put(_SENTINEL)

    def worker(order: int, transform: Transform) -> None:
        q_in, q_out = queues[order], queues[order + 1]
        it = _QueueIter(q_in)
        try:
            for out in transform(iter(it)):
                if it.poisoned:
                    # The input was poisoned mid-stream: suppress trailing
                    # outputs derived from the truncated input (a partial
                    # chunk, say) — they are not a prefix of the healthy
                    # stream.
                    break
                q_out.put(out)
                if on_depth is not None:
                    on_depth(order + 1, q_out.qsize())
            if it.poisoned:
                q_out.put(_POISON)
            elif not it.exhausted:
                # The transform returned without consuming its whole
                # input — a stop condition truncated the stream.  Tell
                # the source to stop generating.
                cancel.set()
        except BaseException as exc:
            fail(order, exc)
            q_out.put(_POISON)
        finally:
            it.drain()
            q_out.put(_SENTINEL)

    threads = [threading.Thread(target=feeder, daemon=True)]
    threads += [threading.Thread(target=worker, args=(i, t), daemon=True)
                for i, t in enumerate(transforms)]
    for t in threads:
        t.start()

    try:
        while True:
            item = queues[-1].get()
            if item is _SENTINEL or item is _POISON:
                break
            yield item
    except GeneratorExit:
        # Consumer stopped early: stop the source; daemon threads drain.
        cancel.set()
        raise
    for t in threads:
        t.join()
    if failures:
        raise failures[min(failures)]
