"""Stream (task-parallel) skeletons.

The paper positions SCL against P3L, whose skeletons "connect together
... single streams", and notes that "parallel composition of concurrent
tasks can be supported ... on top of the SCL layer; thus task parallelism
is supported when it is needed".  This package is that layer: skeletons
over *streams* (Python iterables) rather than distributed arrays:

* :func:`stream_map` / :func:`stream_farm` — ordered and unordered
  concurrent map over a stream with bounded in-flight work,
* :func:`stream_filter`, :func:`stream_reduce`, :func:`stream_scan` —
  the stream counterparts of the elementary skeletons,
* :func:`pipeline` — stage-parallel composition: each stage runs in its
  own thread, connected by bounded queues (P3L's ``pipe``),
* :func:`pipeline_machine` — the same pipeline on the simulated machine,
  one stage per processor, reproducing the textbook fill/drain law
  ``T ≈ (m + s - 1) · t_stage``,
* :mod:`repro.stream.plan` — *stream plans*: the HsSkel ``Stream`` GADT
  (``stGen``/``stChunk``/``stUnChunk``/``stStop``) as a typed IR whose
  ``MapPlan`` stage executes each chunk through the SCL compiler, the
  plan optimizer and the vectorized data plane, with bounded-queue
  backpressure and stateful stop conditions over infinite sources.
"""

from repro.stream.skeletons import (
    stream_map,
    stream_farm,
    stream_filter,
    stream_reduce,
    stream_scan,
)
from repro.stream.pipeline import pipeline, PipelineStage, pipeline_machine
from repro.stream.plan import (
    Chunk,
    MapPlan,
    MapSeq,
    Source,
    Stop,
    StreamPlan,
    StreamRunStats,
    UnChunk,
    stream_plan,
)

__all__ = [
    "stream_map",
    "stream_farm",
    "stream_filter",
    "stream_reduce",
    "stream_scan",
    "pipeline",
    "PipelineStage",
    "pipeline_machine",
    "Source",
    "Chunk",
    "UnChunk",
    "MapSeq",
    "MapPlan",
    "Stop",
    "StreamPlan",
    "StreamRunStats",
    "stream_plan",
]
