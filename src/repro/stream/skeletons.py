"""Elementary skeletons over streams.

All functions are lazy: they consume their input iterable incrementally
and yield results incrementally, so unbounded streams work.  The ordered
operations are *deterministic*: with any executor, ``stream_map(f, xs)``
yields exactly ``map(f, xs)``.
"""

from __future__ import annotations

import collections
import concurrent.futures
from typing import Callable, Iterable, Iterator, TypeVar

from repro.errors import SkeletonError
from repro.runtime.executor import Executor, SequentialExecutor, _PoolExecutor, get_executor

__all__ = ["stream_map", "stream_farm", "stream_filter", "stream_reduce",
           "stream_scan"]

_T = TypeVar("_T")
_U = TypeVar("_U")


def _pool_of(executor: Executor | str | None):
    """The concurrent.futures pool behind an executor, or None if serial."""
    ex = get_executor(executor)
    if isinstance(ex, SequentialExecutor):
        return None
    if isinstance(ex, _PoolExecutor):
        return ex.pool
    raise SkeletonError(
        f"stream skeletons need a pool-backed or sequential executor, "
        f"got {type(ex).__name__}")


def stream_map(f: Callable[[_T], _U], items: Iterable[_T], *,
               executor: Executor | str | None = None,
               window: int = 16) -> Iterator[_U]:
    """Ordered concurrent map over a stream.

    Keeps at most ``window`` applications in flight; results are yielded
    in input order regardless of completion order.
    """
    if window <= 0:
        raise SkeletonError(f"window must be positive, got {window}")
    pool = _pool_of(executor)
    if pool is None:
        for x in items:
            yield f(x)
        return
    pending: collections.deque = collections.deque()
    it = iter(items)
    try:
        for x in it:
            pending.append(pool.submit(f, x))
            if len(pending) >= window:
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()
    finally:
        for fut in pending:
            fut.cancel()


def stream_farm(f: Callable[[_T], _U], items: Iterable[_T], *,
                executor: Executor | str | None = None,
                window: int = 16,
                ordered: bool = True) -> Iterator[_U]:
    """Farm a stream of jobs out to workers.

    ``ordered=True`` behaves like :func:`stream_map`; ``ordered=False``
    yields results as they complete (higher throughput under variable job
    sizes, order unspecified) — the task-farm semantics of P3L's ``farm``.
    """
    if ordered:
        yield from stream_map(f, items, executor=executor, window=window)
        return
    if window <= 0:
        raise SkeletonError(f"window must be positive, got {window}")
    pool = _pool_of(executor)
    if pool is None:
        for x in items:
            yield f(x)
        return
    pending: set = set()
    it = iter(items)
    exhausted = False
    try:
        while True:
            while not exhausted and len(pending) < window:
                try:
                    pending.add(pool.submit(f, next(it)))
                except StopIteration:
                    exhausted = True
            if not pending:
                return
            done, pending = concurrent.futures.wait(
                pending, return_when=concurrent.futures.FIRST_COMPLETED)
            for fut in done:
                yield fut.result()
    finally:
        for fut in pending:
            fut.cancel()


def stream_filter(pred: Callable[[_T], bool], items: Iterable[_T], *,
                  executor: Executor | str | None = None,
                  window: int = 16) -> Iterator[_T]:
    """Ordered concurrent filter: predicates evaluate in parallel, the
    surviving items come out in input order."""
    flagged = stream_map(lambda x: (pred(x), x), items,
                         executor=executor, window=window)
    return (x for keep, x in flagged if keep)


def stream_reduce(op: Callable[[_U, _T], _U], items: Iterable[_T],
                  initial: _U) -> _U:
    """Left fold of a stream (inherently sequential; constant memory)."""
    acc = initial
    for x in items:
        acc = op(acc, x)
    return acc


def stream_scan(op: Callable[[_U, _T], _U], items: Iterable[_T],
                initial: _U) -> Iterator[_U]:
    """Running left fold: yields the accumulator after every element."""
    acc = initial
    for x in items:
        acc = op(acc, x)
        yield acc
