"""Stage-parallel pipelines — P3L's ``pipe`` skeleton.

:func:`pipeline` composes per-item stage functions into a pipeline where
each stage runs in its own thread, connected by bounded queues.  The
result stream is always in input order and element-wise identical to
composing the stages sequentially; only the *timing* changes (stage
overlap).

:func:`pipeline_machine` runs the same structure on the simulated
machine — stage ``s`` on processor ``s``, items flowing as messages — so
the classic fill/drain law ``T ≈ (m + s - 1) · t_bottleneck`` can be
measured rather than assumed (and is, in the test-suite).
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SkeletonError
from repro.machine import Comm, Machine, MachineSpec, PERFECT
from repro.machine.cost import estimate_nbytes
from repro.machine.simulator import RunResult
from repro.machine.topology import Ring

__all__ = ["PipelineStage", "pipeline", "pipeline_machine"]

_SENTINEL = object()


@dataclasses.dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: a per-item function plus an optional op cost.

    ``ops`` is only consulted by :func:`pipeline_machine` (virtual time);
    the thread pipeline just calls ``fn``.
    """

    fn: Callable[[Any], Any]
    ops: float = 10.0
    name: str = ""

    @classmethod
    def of(cls, stage: "PipelineStage | Callable[[Any], Any]") -> "PipelineStage":
        if isinstance(stage, PipelineStage):
            return stage
        if callable(stage):
            return cls(fn=stage, name=getattr(stage, "__name__", ""))
        raise SkeletonError(f"pipeline stage must be callable, got {stage!r}")


def pipeline(stages: Sequence["PipelineStage | Callable[[Any], Any]"], *,
             buffer: int = 8) -> Callable[[Iterable[Any]], Iterator[Any]]:
    """Compose stages into a thread-parallel pipeline over streams.

    ``pipeline([f, g, h])(xs)`` yields ``h(g(f(x)))`` for each ``x`` in
    order, with the three stages overlapping on consecutive items.
    ``buffer`` bounds each inter-stage queue (backpressure).
    """
    parsed = [PipelineStage.of(s) for s in stages]
    if buffer <= 0:
        raise SkeletonError(f"buffer must be positive, got {buffer}")

    def run(items: Iterable[Any]) -> Iterator[Any]:
        if not parsed:
            yield from items
            return
        queues: list[queue.Queue] = [queue.Queue(maxsize=buffer)
                                     for _ in range(len(parsed) + 1)]
        failure: list[BaseException] = []

        def feeder() -> None:
            try:
                for x in items:
                    queues[0].put(x)
            except BaseException as exc:  # propagate producer errors
                failure.append(exc)
            finally:
                queues[0].put(_SENTINEL)

        def worker(idx: int) -> None:
            fn = parsed[idx].fn
            q_in, q_out = queues[idx], queues[idx + 1]
            try:
                while True:
                    item = q_in.get()
                    if item is _SENTINEL:
                        break
                    q_out.put(fn(item))
            except BaseException as exc:
                failure.append(exc)
                # drain so upstream put() never blocks forever
                while q_in.get() is not _SENTINEL:
                    pass
            finally:
                q_out.put(_SENTINEL)

        threads = [threading.Thread(target=feeder, daemon=True)]
        threads += [threading.Thread(target=worker, args=(i,), daemon=True)
                    for i in range(len(parsed))]
        for t in threads:
            t.start()
        out = queues[-1]
        while True:
            item = out.get()
            if item is _SENTINEL:
                break
            yield item
        for t in threads:
            t.join()
        if failure:
            raise failure[0]

    return run


def pipeline_machine(
    stages: Sequence["PipelineStage | Callable[[Any], Any]"],
    items: Sequence[Any],
    *,
    spec: MachineSpec = PERFECT,
    item_nbytes: int | None = None,
) -> tuple[list[Any], RunResult]:
    """Run a pipeline on the simulated machine, one stage per processor.

    Processor ``s`` receives each item from processor ``s - 1``, charges
    its stage's ``ops``, and forwards the result.  Returns the ordered
    output list (collected on the last processor) and the run result —
    whose makespan exhibits the fill/drain behaviour
    ``T ≈ (m + s - 1) · t_bottleneck`` for ``m`` items.
    """
    parsed = [PipelineStage.of(s) for s in stages]
    if not parsed:
        raise SkeletonError("pipeline_machine requires at least one stage")
    items = list(items)
    s = len(parsed)
    machine = Machine(Ring(s) if s > 1 else 1, spec=spec)

    def program(env):
        comm = Comm.world(env)
        rank = comm.rank
        stage = parsed[rank]
        outputs = []
        for k in range(len(items)):
            if rank == 0:
                value = items[k]
            else:
                msg = yield comm.recv(rank - 1, tag=k)
                value = msg.payload
            yield env.work(stage.ops)
            value = stage.fn(value)
            if rank < comm.size - 1:
                nbytes = (estimate_nbytes(value, env.spec.word_bytes)
                          if item_nbytes is None else item_nbytes)
                yield comm.send(rank + 1, value, tag=k, nbytes=nbytes)
            else:
                outputs.append(value)
        return outputs

    res = machine.run(program)
    return res.values[-1], res
