"""Stage-parallel pipelines — P3L's ``pipe`` skeleton.

:func:`pipeline` composes per-item stage functions into a pipeline where
each stage runs in its own thread, connected by bounded queues.  The
result stream is always in input order and element-wise identical to
composing the stages sequentially; only the *timing* changes (stage
overlap).

:func:`pipeline_machine` runs the same structure on the simulated
machine — stage ``s`` on processor ``s``, items flowing as messages — so
the classic fill/drain law ``T ≈ (m + s - 1) · t_bottleneck`` can be
measured rather than assumed (and is, in the test-suite).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SkeletonError
from repro.machine import Comm, Machine, MachineSpec, PERFECT
from repro.machine.cost import estimate_nbytes
from repro.machine.simulator import RunResult
from repro.machine.topology import Ring
from repro.stream._runner import run_staged

__all__ = ["PipelineStage", "pipeline", "pipeline_machine"]


@dataclasses.dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: a per-item function plus an optional op cost.

    ``ops`` is only consulted by :func:`pipeline_machine` (virtual time);
    the thread pipeline just calls ``fn``.
    """

    fn: Callable[[Any], Any]
    ops: float = 10.0
    name: str = ""

    @classmethod
    def of(cls, stage: "PipelineStage | Callable[[Any], Any]") -> "PipelineStage":
        if isinstance(stage, PipelineStage):
            return stage
        if callable(stage):
            return cls(fn=stage, name=getattr(stage, "__name__", ""))
        raise SkeletonError(f"pipeline stage must be callable, got {stage!r}")


def pipeline(stages: Sequence["PipelineStage | Callable[[Any], Any]"], *,
             buffer: int = 8) -> Callable[[Iterable[Any]], Iterator[Any]]:
    """Compose stages into a thread-parallel pipeline over streams.

    ``pipeline([f, g, h])(xs)`` yields ``h(g(f(x)))`` for each ``x`` in
    order, with the three stages overlapping on consecutive items.
    ``buffer`` bounds each inter-stage queue (backpressure).

    When a stage raises, a poison marker propagates downstream
    immediately (later stages stop at the failure point rather than
    processing every in-flight item), the producer is cancelled (so an
    infinite input terminates), and the *earliest* failure by stage
    order is raised — concurrent failures in later stages never mask
    the one that actually cut the stream.  See
    :mod:`repro.stream._runner` for the full contract.
    """
    parsed = [PipelineStage.of(s) for s in stages]
    if buffer <= 0:
        raise SkeletonError(f"buffer must be positive, got {buffer}")

    def stage_transform(fn: Callable[[Any], Any]):
        def transform(it: Iterator[Any]) -> Iterator[Any]:
            for x in it:
                yield fn(x)
        return transform

    def run(items: Iterable[Any]) -> Iterator[Any]:
        yield from run_staged(items, [stage_transform(s.fn) for s in parsed],
                              buffer=buffer)

    return run


def pipeline_machine(
    stages: Sequence["PipelineStage | Callable[[Any], Any]"],
    items: Sequence[Any],
    *,
    spec: MachineSpec = PERFECT,
    item_nbytes: int | None = None,
) -> tuple[list[Any], RunResult]:
    """Run a pipeline on the simulated machine, one stage per processor.

    Processor ``s`` receives each item from processor ``s - 1``, charges
    its stage's ``ops``, and forwards the result.  Returns the ordered
    output list (collected on the last processor) and the run result —
    whose makespan exhibits the fill/drain behaviour
    ``T ≈ (m + s - 1) · t_bottleneck`` for ``m`` items.
    """
    parsed = [PipelineStage.of(s) for s in stages]
    if not parsed:
        raise SkeletonError("pipeline_machine requires at least one stage")
    items = list(items)
    s = len(parsed)
    machine = Machine(Ring(s) if s > 1 else 1, spec=spec)

    def program(env):
        comm = Comm.world(env)
        rank = comm.rank
        stage = parsed[rank]
        outputs = []
        for k in range(len(items)):
            if rank == 0:
                value = items[k]
            else:
                msg = yield comm.recv(rank - 1, tag=k)
                value = msg.payload
            yield env.work(stage.ops)
            value = stage.fn(value)
            if rank < comm.size - 1:
                nbytes = (estimate_nbytes(value, env.spec.word_bytes)
                          if item_nbytes is None else item_nbytes)
                yield comm.send(rank + 1, value, tag=k, nbytes=nbytes)
            else:
                outputs.append(value)
        return outputs

    res = machine.run(program)
    return res.values[-1], res
