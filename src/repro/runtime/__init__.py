"""Real execution backends for the skeleton library.

The paper's two-tier contract says the SCL layer owns all parallel control
while base-language fragments stay sequential.  This package supplies the
interchangeable *executors* the elementary skeletons hand their independent
work items to:

* :class:`SequentialExecutor` — deterministic in-process baseline,
* :class:`ThreadExecutor` — a shared-memory thread pool (NumPy-heavy base
  code releases the GIL; pure-Python base code will not speed up — see
  DESIGN.md),
* :class:`ProcessExecutor` — process pool for picklable CPU-bound work.

All three implement the :class:`Executor` protocol (``map`` preserving input
order), so any skeleton accepts any backend.
"""

from repro.runtime.executor import (
    Executor,
    SequentialExecutor,
    ThreadExecutor,
    ProcessExecutor,
    get_executor,
)
from repro.runtime.chunking import chunk_evenly, chunk_indices

__all__ = [
    "Executor",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "chunk_evenly",
    "chunk_indices",
]
