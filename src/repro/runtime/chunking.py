"""Deterministic chunking helpers used by partition patterns and executors."""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.errors import SkeletonError

__all__ = ["chunk_indices", "chunk_evenly"]

_T = TypeVar("_T")


def chunk_indices(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous ``(start, stop)`` spans.

    The first ``n % parts`` spans get one extra element, so sizes differ by
    at most one.  Spans may be empty when ``parts > n``; they are still
    returned so the caller gets exactly ``parts`` spans.
    """
    if parts <= 0:
        raise SkeletonError(f"parts must be positive, got {parts}")
    if n < 0:
        raise SkeletonError(f"n must be non-negative, got {n}")
    base, extra = divmod(n, parts)
    spans: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def chunk_evenly(items: Sequence[_T], parts: int) -> list[Sequence[_T]]:
    """Split a sequence into ``parts`` contiguous chunks of near-equal size."""
    return [items[lo:hi] for lo, hi in chunk_indices(len(items), parts)]
