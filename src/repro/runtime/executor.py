"""Executor protocol and implementations.

An :class:`Executor` runs a function over independent items and returns the
results *in input order*.  Skeletons never depend on evaluation order, only
on result order — that is what makes them portable across backends, which is
the paper's portability claim ("specialised implementations of the
compositional operators on target architectures").
"""

from __future__ import annotations

import abc
import concurrent.futures
import os
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import SkeletonError

__all__ = [
    "Executor",
    "SequentialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
]

_T = TypeVar("_T")
_U = TypeVar("_U")


class Executor(abc.ABC):
    """Runs independent work items; results come back in input order."""

    @abc.abstractmethod
    def map(self, fn: Callable[[_T], _U], items: Iterable[_T]) -> list[_U]:
        """Apply ``fn`` to every item; return results in input order."""

    def starmap(self, fn: Callable[..., _U], items: Iterable[Sequence[Any]]) -> list[_U]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(lambda args: fn(*args), items)

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SequentialExecutor(Executor):
    """Runs everything in the calling thread, in order. The baseline."""

    def map(self, fn: Callable[[_T], _U], items: Iterable[_T]) -> list[_U]:
        return [fn(x) for x in items]

    def __repr__(self) -> str:
        return "SequentialExecutor()"


class _PoolExecutor(Executor):
    """Shared logic for the concurrent.futures-backed executors."""

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise SkeletonError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self._pool: concurrent.futures.Executor | None = None

    @abc.abstractmethod
    def _make_pool(self) -> concurrent.futures.Executor: ...

    @property
    def pool(self) -> concurrent.futures.Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def map(self, fn: Callable[[_T], _U], items: Iterable[_T]) -> list[_U]:
        return list(self.pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadExecutor(_PoolExecutor):
    """Thread pool.

    True speedup requires the base-language fragments to release the GIL
    (NumPy kernels do); pure-Python fragments run correctly but serially.
    """

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(max_workers=self.max_workers)


class ProcessExecutor(Executor):
    """Process pool. Function and items must be picklable (top-level defs).

    Backed by the persistent shared-memory worker pool of
    :mod:`repro.plan.pexec` (which replaced the seed-era
    ``concurrent.futures.ProcessPoolExecutor`` here): workers start
    lazily on the first :meth:`map`, survive across calls, and uniform
    ndarray results travel back through shared memory instead of the
    pickle pipe.  A crashed worker raises
    :class:`~repro.errors.PoolError`.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers <= 0:
            raise SkeletonError(
                f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self._pool: Any = None

    @property
    def pool(self):
        if self._pool is None:
            from repro.plan.pexec import WorkerPool

            self._pool = WorkerPool(self.max_workers)
        return self._pool

    def map(self, fn: Callable[[_T], _U], items: Iterable[_T]) -> list[_U]:
        return self.pool.run_map(fn, list(items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __repr__(self) -> str:
        return f"ProcessExecutor(max_workers={self.max_workers})"


def get_executor(spec: "Executor | str | None") -> Executor:
    """Coerce an executor spec to an instance.

    ``None`` or ``"sequential"`` → :class:`SequentialExecutor`;
    ``"threads"`` → :class:`ThreadExecutor`; ``"processes"`` →
    :class:`ProcessExecutor`; an :class:`Executor` instance passes through.
    """
    if spec is None or spec == "sequential":
        return SequentialExecutor()
    if isinstance(spec, Executor):
        return spec
    if spec == "threads":
        return ThreadExecutor()
    if spec == "processes":
        return ProcessExecutor()
    raise SkeletonError(f"unknown executor spec {spec!r}")
