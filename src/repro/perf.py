"""Simulator performance harness: throughput, collectives, Table-1 wall-clock.

This module measures *host* performance of the discrete-event simulator —
how fast the simulator itself runs on the machine executing it — as opposed
to the *virtual* AP1000 timings every other artefact in this repository
reports.  Three workload families are measured at several machine sizes:

``ring_sweep``
    A pure point-to-point microbenchmark: every processor repeatedly
    computes, sends to its right ring neighbour and receives from its left
    one.  Throughput is reported in message events per host second (one
    send plus one receive per message), the simulator-core metric.

``wildcard_funnel``
    A many-to-one stress: processor 0 drains ``(p-1) * per_src`` messages
    with ``recv(ANY, ANY)`` while every other processor fires computes and
    tagged sends at it.  Exercises the wildcard (arrival-ordered) matching
    path rather than the concrete FIFO fast path.

``allreduce``
    Collective latency: repeated world-communicator ``allreduce`` rounds.
    Reports host seconds per collective alongside throughput.

``hyperquicksort``
    The end-to-end Table 1 run (100,000 integers, scatter + sort + gather)
    at p processors — the headline workload the ROADMAP's perf trajectory
    is tracked against.

``compiled_hyperquicksort`` / ``compiled_hyperquicksort_noopt``
    The same sort through the SCL compiler: the §5 expression lowered once
    to the Plan IR (cache hit on every repeat) and executed with the plan
    optimizer on (the default) or forced off.  The opt row is tracked
    against two frozen anchors: ``TREEWALK_BASELINE`` — the per-processor
    recursive tree-walking compiler the Plan IR replaced — and
    ``PLAN_INTERP_BASELINE`` — the PR-4 plan interpreter before the
    optimizer and the vectorized data plane.  ``speedup_vs_noopt`` pairs
    the two rows measured in the same process, so the figure is free of
    host-speed drift.

``compiled_gauss_jordan`` / ``compiled_gauss_jordan_noopt``
    The §3 solver through the same compiler at one fixed small (n, p) —
    the second optimized-vs-unoptimized tracked pair, exercising the
    vectorized elementwise kernel rather than opaque fragments.

``tuned_hyperquicksort`` / ``tuned_hyperquicksort_greedy``
    The cost-driven rewrite search (:mod:`repro.tune`) against the
    greedy rewriter on the workload built to split them: hyperquicksort
    plus a naive per-group epilogue whose fetch fusion is a greedy trap
    (locally plausible, concentrates traffic on a single-port machine).
    The search row goes through the tuned-plan cache tier, so repeats
    amortise the beam search; ``speedup_vs_greedy`` ratios the *virtual*
    makespans — the simulated win of declining the bad law.  The search
    row also cross-checks both strategies' outputs bit-for-bit.

``parallel_hyperquicksort``
    The hardware tier (PR 10): the compiled sort with its fragment
    compute dispatched to the :mod:`repro.plan.pexec` shared-memory
    worker pool, at a key count large enough to amortize dispatch.  One
    row per machine size carries a three-way A/B measured in the same
    process — in-process vexec (``host_seconds_vexec``,
    ``speedup_vs_vexec``), a one-worker pool run pricing the dispatch
    machinery itself (``host_seconds_w1``), and the workers=N run the
    row's ``host_seconds`` reports (``speedup_workers`` = w1/wN) — plus
    ``host_cpus``, because a worker pool cannot beat one core on a
    single-core host no matter how correct it is.  Virtual results are
    asserted bit-identical across all three arms.

``trace_overhead``
    The compiled sort three ways: tracing off, traced into memory, traced
    through a streaming JSONL sink.  The off/traced ratios are the price
    of observability — the "tracing disabled costs nothing" claim of
    :mod:`repro.obs`, measured rather than asserted.

``metrics_overhead``
    The skeleton service twice on the identical closed-loop workload:
    metrics disabled (``host_seconds``) vs a live
    :class:`~repro.obs.metrics.MetricsRegistry` plus an
    :class:`~repro.obs.metrics.SloMonitor` with an unreachable target
    (``host_seconds_metrics``) — counters, histograms and the rolling
    SLO window all updating, shedding never engaging, so the runs stay
    event-identical.  ``overhead_metrics`` is the price of the live
    metrics plane; the disabled arm is the "metrics off costs nothing"
    claim, measured the way ``trace_overhead`` measures untraced
    tracing.

``service_sustained``
    The PR-7 skeleton service under closed-loop load: a fixed pool of
    synthetic clients drives the default endpoint registry (two compiled
    plan endpoints plus a chunked stream endpoint, two weighted tenants)
    at full tilt.  Reports request latency quantiles and throughput next
    to the usual events/sec; the plan cache absorbs every request after
    the first few, so the row tracks the *serving* overhead — admission,
    scheduling, ticket resolution — on top of compiled execution.

``stream_chunked``
    The stream data plane alone: a fixed item stream through
    ``Chunk(n) . MapPlan(scan) . UnChunk`` with the threaded
    backpressured executor, at two chunk sizes.  Chunk size trades
    per-chunk lowering-amortisation against parallel slack, the HsSkel
    ``stChunk`` tuning knob.

``run_suite`` executes all of them and ``write_bench_json`` persists the
results to ``BENCH_simulator.json`` at the repository root, next to the
frozen pre-rewrite ``SEED_BASELINE`` numbers, so every future PR can be
compared against both the seed and the previous PR.

Run it with ``python -m repro perf`` or ``python -m benchmarks.perf``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable

import numpy as np

from repro.machine import AP1000, Comm, Machine, collectives
from repro.machine.events import ANY
from repro.machine.simulator import RunResult
from repro.machine.topology import FullyConnected, Hypercube, Ring

__all__ = [
    "PLAN_INTERP_BASELINE",
    "SEED_BASELINE",
    "TREEWALK_BASELINE",
    "annotate_speedups",
    "bench_allreduce",
    "bench_compiled_gauss_jordan",
    "bench_compiled_hyperquicksort",
    "bench_hyperquicksort",
    "bench_metrics_overhead",
    "bench_parallel_hyperquicksort",
    "bench_ring_sweep",
    "bench_service_sustained",
    "bench_stream_chunked",
    "bench_trace_overhead",
    "bench_tuned_hyperquicksort",
    "bench_wildcard_funnel",
    "main",
    "median_merge",
    "render_report",
    "run_suite",
    "write_bench_json",
]

#: Default machine sizes measured by the full suite.
DEFAULT_PROCS = (32, 64, 128, 256)
#: Machine sizes measured in ``--quick`` (CI smoke) mode.
QUICK_PROCS = (32, 64)
#: Extra large-p scaling rows measured for ``ring_sweep`` only in the
#: default suite (the batched engine's headline scaling range; the other
#: workloads are swept at these sizes only with an explicit ``--procs``).
LARGE_RING_PROCS = (1024, 4096)
#: The large-p smoke row tracked by the CI perf gate in ``--quick`` mode
#: (reduced rounds, one repeat) so scaling regressions fail the job.
QUICK_LARGE_RING = 1024
#: Machine sizes of the host-parallel ``parallel_hyperquicksort`` rows
#: (full suite / quick mode).  The key counts are sized so dispatch
#: amortizes: ``1 << 19`` keys full, ``1 << 17`` quick.
PARALLEL_PROCS = (128, 1024)
PARALLEL_QUICK_PROCS = (128,)

#: Host-time results of this exact suite measured on the seed (pre-rewrite)
#: simulator: O(p) ready-list scan, linear mailbox, uncached hop routing.
#: Frozen at PR 1 so the events/sec trajectory keeps an absolute anchor;
#: ``speedup_vs_seed`` in BENCH_simulator.json is computed against these.
#: (Regenerated with ``python -m repro.perf --emit-baseline`` on the seed
#: tree; see docs/calibration.md "Simulator performance".)
SEED_BASELINE: dict[str, dict[str, float]] = {
    "ring_sweep/p32": {"host_seconds": 0.127322, "events": 9600, "events_per_sec": 75399},
    "wildcard_funnel/p32": {"host_seconds": 0.201387, "events": 2480, "events_per_sec": 12315},
    "allreduce/p32": {"host_seconds": 0.031919, "events": 3100, "events_per_sec": 97120},
    "hyperquicksort/p32": {"host_seconds": 0.022266, "events": 702, "events_per_sec": 31527},
    "ring_sweep/p64": {"host_seconds": 0.395384, "events": 19200, "events_per_sec": 48560},
    "wildcard_funnel/p64": {"host_seconds": 0.773616, "events": 5040, "events_per_sec": 6515},
    "allreduce/p64": {"host_seconds": 0.09004, "events": 6300, "events_per_sec": 69969},
    "hyperquicksort/p64": {"host_seconds": 0.072377, "events": 1662, "events_per_sec": 22963},
    "ring_sweep/p128": {"host_seconds": 1.306282, "events": 38400, "events_per_sec": 29396},
    "wildcard_funnel/p128": {"host_seconds": 3.10086, "events": 10160, "events_per_sec": 3277},
    "allreduce/p128": {"host_seconds": 0.208364, "events": 12700, "events_per_sec": 60951},
    "hyperquicksort/p128": {"host_seconds": 0.151576, "events": 3838, "events_per_sec": 25321},
    "ring_sweep/p256": {"host_seconds": 4.385962, "events": 76800, "events_per_sec": 17510},
    "wildcard_funnel/p256": {"host_seconds": 12.868559, "events": 20400, "events_per_sec": 1585},
    "allreduce/p256": {"host_seconds": 0.494632, "events": 25500, "events_per_sec": 51553},
    "hyperquicksort/p256": {"host_seconds": 0.46508, "events": 8702, "events_per_sec": 18711},
}

#: Host-time results of the compiled (§5 expression) hyperquicksort under
#: the PR-2 *tree-walking* compiler — a per-processor recursive ``_exec``
#: over the expression tree, re-walked on every run.  Frozen when the
#: Plan-IR compiler (lower once, interpret a flat instruction stream,
#: cache per expression) replaced it, so the refactor's host cost stays
#: tracked the same way the scheduler rewrite is tracked by
#: ``SEED_BASELINE``.  Same workload as ``bench_compiled_hyperquicksort``:
#: 100,000 int32 keys, seed 19950701, best of 3.
TREEWALK_BASELINE: dict[str, dict[str, float]] = {
    "compiled_hyperquicksort/p32": {"host_seconds": 0.022635, "events": 578, "events_per_sec": 25536},
    "compiled_hyperquicksort/p64": {"host_seconds": 0.051609, "events": 1410, "events_per_sec": 27321},
    "compiled_hyperquicksort/p128": {"host_seconds": 0.070219, "events": 3330, "events_per_sec": 47423},
    "compiled_hyperquicksort/p256": {"host_seconds": 0.183219, "events": 7682, "events_per_sec": 41928},
}

#: Host-time results of the compiled hyperquicksort under the PR-4 *plan
#: interpreter* — per-rank generator programs stepping the Plan IR one
#: instruction at a time, before the optimizer passes and the scripted
#: (vectorized) data plane of PR 5.  Frozen from the PR-4
#: ``BENCH_simulator.json`` so ``speedup_vs_interp`` tracks what the
#: optimizer+vexec stack buys over straight interpretation.  Same workload:
#: 100,000 int32 keys, seed 19950701, best of 3.
PLAN_INTERP_BASELINE: dict[str, dict[str, float]] = {
    "compiled_hyperquicksort/p32": {"host_seconds": 0.008663, "events": 578, "events_per_sec": 66720},
    "compiled_hyperquicksort/p64": {"host_seconds": 0.018008, "events": 1410, "events_per_sec": 78299},
    "compiled_hyperquicksort/p128": {"host_seconds": 0.040285, "events": 3330, "events_per_sec": 82661},
    "compiled_hyperquicksort/p256": {"host_seconds": 0.082541, "events": 7682, "events_per_sec": 93069},
}


def _events(result: RunResult) -> int:
    """Message events in a run: one per send plus one per receive.

    Derived from per-processor counters only, so the figure is identical
    for any engine that simulates the same program — making events/sec
    ratios between engines equal to host-time ratios.
    """
    return result.total_messages + sum(s.msgs_received for s in result.stats)


def _timed(run: Callable[[], RunResult], *, repeats: int = 1) -> tuple[float, RunResult]:
    """Best-of-``repeats`` host time for ``run`` plus its (last) result."""
    best = float("inf")
    result: RunResult | None = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - t0)
    assert result is not None
    return best, result


def _record(name: str, p: int, host_seconds: float, result: RunResult,
            **extra: Any) -> dict[str, Any]:
    events = _events(result)
    rec: dict[str, Any] = {
        "workload": name,
        "p": p,
        "host_seconds": round(host_seconds, 6),
        "events": events,
        "events_per_sec": round(events / host_seconds) if host_seconds > 0 else 0,
        "makespan": result.makespan,
        "messages": result.total_messages,
    }
    rec.update(extra)
    return rec


def bench_ring_sweep(p: int, *, rounds: int = 150,
                     repeats: int = 2) -> dict[str, Any]:
    """Point-to-point sweep: compute + send-right + recv-left, ``rounds`` times."""
    machine = Machine(Ring(p), spec=AP1000)

    def program(env):
        right = (env.pid + 1) % env.nprocs
        left = (env.pid - 1) % env.nprocs
        for r in range(rounds):
            yield env.work(ops=50)
            yield env.send(right, r, tag=1, nbytes=64)
            yield env.recv(left, tag=1)
        return None

    host, result = _timed(lambda: machine.run(program), repeats=repeats)
    return _record("ring_sweep", p, host, result, rounds=rounds)


def bench_wildcard_funnel(p: int, *, per_src: int = 40,
                          repeats: int = 2) -> dict[str, Any]:
    """Many-to-one funnel drained entirely with ``recv(ANY, ANY)``."""
    machine = Machine(FullyConnected(p), spec=AP1000)

    def program(env):
        if env.pid == 0:
            total = 0
            for _ in range((env.nprocs - 1) * per_src):
                msg = yield env.recv(ANY, tag=ANY)
                total += msg.payload
            return total
        for i in range(per_src):
            yield env.work(ops=20 * env.pid)
            yield env.send(0, 1, tag=env.pid % 5, nbytes=16)
        return None

    host, result = _timed(lambda: machine.run(program), repeats=repeats)
    return _record("wildcard_funnel", p, host, result, per_src=per_src)


def bench_allreduce(p: int, *, reps: int = 25,
                    repeats: int = 2) -> dict[str, Any]:
    """Collective latency: ``reps`` world-communicator allreduce rounds."""
    machine = Machine(Hypercube.of_size(p), spec=AP1000)

    def program(env):
        comm = Comm.world(env)
        acc = float(env.pid)
        for _ in range(reps):
            acc = yield from collectives.allreduce(comm, acc, lambda a, b: a + b,
                                                   nbytes=8)
        return acc

    host, result = _timed(lambda: machine.run(program), repeats=repeats)
    return _record("allreduce", p, host, result, reps=reps,
                   host_seconds_per_collective=round(host / reps, 6))


def bench_hyperquicksort(p: int, *, n: int = 100_000, seed: int = 19950701,
                         repeats: int = 3) -> dict[str, Any]:
    """End-to-end Table 1 workload: sort ``n`` random integers on p procs."""
    from repro.apps.sort import hyperquicksort_machine

    d = int(p).bit_length() - 1
    if 1 << d != p:
        raise ValueError(f"hyperquicksort needs a power-of-two p, got {p}")
    values = np.random.default_rng(seed).integers(0, 2**31, size=n).astype(np.int32)
    expected = np.sort(values)

    def run() -> RunResult:
        out, result = hyperquicksort_machine(values, d)
        if not np.array_equal(out, expected):
            raise AssertionError(f"hyperquicksort produced a wrong sort at p={p}")
        return result

    host, result = _timed(run, repeats=repeats)
    return _record("hyperquicksort", p, host, result, n=n)


def bench_compiled_hyperquicksort(p: int, *, n: int = 100_000,
                                  seed: int = 19950701,
                                  repeats: int = 3,
                                  opt: str = "auto") -> dict[str, Any]:
    """The §5 expression through the SCL compiler (plan-cached repeats).

    The first run lowers the expression to a plan; later runs (including
    every ``repeats`` iteration here, since best-of timing is used) hit
    the plan cache, so the figure tracks execution speed with amortised
    lowering — the production profile of a compiled program.  ``opt``
    is the plan-optimizer switch (``"auto"`` = passes + vectorized data
    plane, ``"off"`` = the raw lowering through the plan interpreter);
    the off variant is recorded as ``compiled_hyperquicksort_noopt``.
    """
    from repro.apps.sort import hyperquicksort_compiled

    d = int(p).bit_length() - 1
    if 1 << d != p:
        raise ValueError(f"hyperquicksort needs a power-of-two p, got {p}")
    values = np.random.default_rng(seed).integers(0, 2**31, size=n).astype(np.int32)
    expected = np.sort(values)

    def run() -> RunResult:
        out, result = hyperquicksort_compiled(values, d, opt=opt)
        if not np.array_equal(out, expected):
            raise AssertionError(f"compiled sort produced a wrong sort at p={p}")
        return result

    host, result = _timed(run, repeats=repeats)
    name = ("compiled_hyperquicksort" if opt != "off"
            else "compiled_hyperquicksort_noopt")
    rec = _record(name, p, host, result, n=n)
    base = TREEWALK_BASELINE.get(f"{name}/p{p}")
    # Only ratio against the frozen tree-walk numbers when this run is the
    # same workload they were measured on.  The event count alone can't
    # tell: the compiled program exchanges one message per rank per step
    # regardless of n, so quick mode (smaller n) matches on events while
    # moving less data per host-second.
    if base and host > 0 and n == 100_000 and rec["events"] == base["events"]:
        rec["speedup_vs_treewalk"] = round(base["host_seconds"] / host, 2)
    return rec


def bench_compiled_gauss_jordan(p: int, *, n: int = 48, seed: int = 19950701,
                                repeats: int = 3,
                                opt: str = "auto") -> dict[str, Any]:
    """The §3 solver through the SCL compiler at one small (n, p).

    The gauss-jordan elimination fragment has a registered batched kernel
    (:func:`repro.plan.kernels.vectorize_fragment`), so the opt variant
    exercises the SoA data plane on a real numerical workload; ``opt="off"``
    times the same plan through the per-rank interpreter
    (``compiled_gauss_jordan_noopt``).
    """
    from repro.apps.linalg import gauss_jordan_compiled

    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n)) + n * np.eye(n)
    b = rng.normal(size=n)

    def run() -> RunResult:
        x, result = gauss_jordan_compiled(A, b, p, opt=opt)
        if not np.allclose(A @ x, b):
            raise AssertionError(f"compiled solve incorrect at n={n}, p={p}")
        return result

    host, result = _timed(run, repeats=repeats)
    name = ("compiled_gauss_jordan" if opt != "off"
            else "compiled_gauss_jordan_noopt")
    return _record(name, p, host, result, n=n)


def bench_tuned_hyperquicksort(p: int, *, n: int = 100_000,
                               seed: int = 19950701, repeats: int = 2,
                               strategy: str = "search",
                               beam: int = 4) -> dict[str, Any]:
    """Search-vs-greedy twin rows on the tuned sort pipeline.

    One strategy per row (``tuned_hyperquicksort`` for the beam search,
    ``tuned_hyperquicksort_greedy`` for the fixpoint rewriter), both on
    the single-port hypercube the pipeline is priced for.  The search
    row's first timed repeat pays the beam search; later repeats hit the
    tuned-plan cache, so best-of timing tracks amortised execution —
    ``search_was_cached`` records whether the tier was already warm.
    The search row additionally runs the greedy winner once and asserts
    the two programs produce bit-identical blocks: meaning preservation
    is measured here, not assumed.  ``speedup_vs_greedy`` (the simulated
    makespan ratio) is attached by :func:`annotate_speedups`.
    """
    from repro.plan.lower import plan_cache_stats
    from repro.tune import run_tuned_hyperquicksort

    d = int(p).bit_length() - 1
    if 1 << d != p:
        raise ValueError(f"hyperquicksort needs a power-of-two p, got {p}")
    values = np.random.default_rng(seed).integers(
        0, 2**31, size=n).astype(np.int32)
    misses_before = plan_cache_stats()["tuned_misses"]
    hold: dict[str, Any] = {}

    def run() -> RunResult:
        out, result, report = run_tuned_hyperquicksort(
            values, d, strategy=strategy, beam=beam)
        hold["out"], hold["report"] = out, report
        return result

    host, result = _timed(run, repeats=repeats)
    report = hold["report"]
    extra: dict[str, Any] = {
        "strategy": strategy,
        "rules_applied": len(report.steps),
    }
    if strategy == "search":
        extra["search_was_cached"] = \
            plan_cache_stats()["tuned_misses"] == misses_before
        out_g, _res_g, _rep_g = run_tuned_hyperquicksort(
            values, d, strategy="greedy")
        identical = all(np.array_equal(np.asarray(a), np.asarray(b))
                        for a, b in zip(list(hold["out"]), list(out_g)))
        if not identical:
            raise AssertionError(
                f"searched and greedy programs diverged at p={p}")
    name = ("tuned_hyperquicksort" if strategy == "search"
            else "tuned_hyperquicksort_greedy")
    return _record(name, p, host, result, n=n, **extra)


def _host_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_parallel_hyperquicksort(p: int, *, n: int = 1 << 19,
                                  seed: int = 19950701,
                                  workers: int | None = None,
                                  repeats: int = 2) -> dict[str, Any]:
    """The compiled sort on the host-parallel worker pool, A/B'd in-process.

    Three arms on identical keys: the plain vexec path, a one-worker pool
    run (same dispatch machinery, no parallelism — the honest baseline
    for ``speedup_workers``), and the workers=N run this row reports.
    All three must produce the same sorted output and the same virtual
    makespan/messages — the pool only moves host time.  ``host_cpus``
    records how many cores the A/B actually had; on a single-core host
    ``speedup_workers`` near 1.0 is the *expected* honest result.
    """
    from repro.apps.sort import hyperquicksort_compiled
    from repro.plan import pexec

    d = int(p).bit_length() - 1
    if 1 << d != p:
        raise ValueError(f"hyperquicksort needs a power-of-two p, got {p}")
    workers = int(workers) if workers else _host_cpus()
    values = np.random.default_rng(seed).integers(
        0, 2**31, size=n).astype(np.int32)
    expected = np.sort(values)

    def arm(parallel: bool, w: int | None) -> Callable[[], RunResult]:
        def run() -> RunResult:
            out, result = hyperquicksort_compiled(
                values, d, parallel=parallel, workers=w)
            if not np.array_equal(out, expected):
                raise AssertionError(
                    f"parallel sort produced a wrong sort at p={p}")
            return result
        return run

    try:
        host_vexec, res_vexec = _timed(arm(False, None), repeats=repeats)
        host_w1, res_w1 = _timed(arm(True, 1), repeats=repeats)
        host_wn, res_wn = _timed(arm(True, workers), repeats=repeats)
    finally:
        pexec.shutdown_pool()
    for other in (res_w1, res_wn):
        if other.makespan != res_vexec.makespan or \
                other.total_messages != res_vexec.total_messages:
            raise AssertionError(
                "parallel run diverged from the vexec oracle in virtual "
                f"time at p={p}")
    return _record(
        "parallel_hyperquicksort", p, host_wn, res_wn, n=n,
        workers=workers, host_cpus=_host_cpus(),
        host_seconds_w1=round(host_w1, 6),
        host_seconds_vexec=round(host_vexec, 6),
        speedup_workers=round(host_w1 / host_wn, 2) if host_wn > 0 else 0.0,
        speedup_vs_vexec=round(host_vexec / host_wn, 2)
        if host_wn > 0 else 0.0)


def bench_trace_overhead(p: int, *, n: int = 100_000, seed: int = 19950701,
                         repeats: int = 3) -> dict[str, Any]:
    """The compiled sort untraced vs memory-traced vs JSONL-streamed.

    ``host_seconds`` is the untraced run (comparable with
    ``compiled_hyperquicksort``); ``host_seconds_memory_trace`` /
    ``host_seconds_jsonl_sink`` time the identical workload with span
    tracing into memory and through a streaming
    :class:`~repro.obs.sinks.JsonlSink` (to the null device, so the
    figure is serialisation cost, not disk luck).  The ``overhead_*``
    ratios are traced/untraced host time.
    """
    from repro.apps.sort import hyperquicksort_expression, seq_quicksort
    from repro.core import parmap, partition
    from repro.core.partition import Block
    from repro.obs.sinks import JsonlSink
    from repro.scl.compile import run_expression

    d = int(p).bit_length() - 1
    if 1 << d != p:
        raise ValueError(f"hyperquicksort needs a power-of-two p, got {p}")
    values = np.random.default_rng(seed).integers(0, 2**31, size=n).astype(np.int32)
    expr = hyperquicksort_expression(d)
    blocks = parmap(seq_quicksort, partition(Block(p), values))

    def run_with(**machine_kw: Any) -> RunResult:
        machine = Machine(Hypercube(d), spec=AP1000, **machine_kw)
        _out, result = run_expression(expr, blocks, machine,
                                      label="hyperquicksort")
        return result

    def run_jsonl() -> RunResult:
        with open(os.devnull, "w", encoding="utf-8") as fh:
            sink = JsonlSink(fh)
            try:
                return run_with(trace_sink=sink)
            finally:
                sink.close()

    host_off, result = _timed(run_with, repeats=repeats)
    host_mem, _ = _timed(lambda: run_with(record_trace=True), repeats=repeats)
    host_jsonl, _ = _timed(run_jsonl, repeats=repeats)
    return _record(
        "trace_overhead", p, host_off, result, n=n,
        host_seconds_memory_trace=round(host_mem, 6),
        host_seconds_jsonl_sink=round(host_jsonl, 6),
        overhead_memory_trace=(round(host_mem / host_off, 2)
                               if host_off > 0 else 0.0),
        overhead_jsonl_sink=(round(host_jsonl / host_off, 2)
                             if host_off > 0 else 0.0))


def bench_service_sustained(concurrency: int, *, requests: int = 600,
                            workers: int = 4) -> dict[str, Any]:
    """Closed-loop load against the default ``repro.serve`` registry.

    ``concurrency`` clients each wait for their response before issuing
    the next request (p in the row key is the client count, not a
    machine size).  The workload content is seeded per request index, so
    ``events`` — total simulated message events across every request —
    is deterministic and the perf gate's staleness check applies;
    ``makespan`` is the summed virtual time of the simulated runs.
    """
    from repro.obs.latency import quantile
    from repro.serve.cli import build_service, default_mix
    from repro.serve.loadgen import closed_loop

    with build_service(workers=workers) as service:
        report = closed_loop(service, default_mix(), requests=requests,
                             concurrency=concurrency, seed=0)
        completions = list(service.completions)
        cache = service.cache_stats()
    if report["errors"] or report["rejected"]:
        raise AssertionError(
            f"service_sustained run degraded: {report['errors']} errors, "
            f"{report['rejected']} rejections")
    host = report["duration_s"]
    events = sum(rec["events"] for rec in completions)
    latencies_ms = [rec["latency_s"] * 1e3 for rec in completions]
    return {
        "workload": "service_sustained",
        "p": concurrency,
        "host_seconds": round(host, 6),
        "events": events,
        "events_per_sec": round(events / host) if host > 0 else 0,
        "makespan": sum(rec["virtual_seconds"] for rec in completions),
        "requests": requests,
        "throughput_rps": report["throughput_rps"],
        "p50_ms": round(quantile(latencies_ms, 0.50), 3),
        "p99_ms": round(quantile(latencies_ms, 0.99), 3),
        "cache_hit_rate": cache["hit_rate"],
    }


def bench_metrics_overhead(p: int, *, requests: int = 240,
                           concurrency: int = 8, workers: int = 4,
                           repeats: int = 2) -> dict[str, Any]:
    """The twin-row proof that the disabled metrics plane costs nothing.

    The identical seeded closed-loop workload (the ``repro.serve``
    default mix at ``nprocs=p``) runs twice: once with
    ``Service(metrics=None)`` (``host_seconds``) and once with a live
    :class:`~repro.obs.metrics.MetricsRegistry` plus an
    :class:`~repro.obs.metrics.SloMonitor` whose p99 target is
    unreachable (``host_seconds_metrics``) — every counter, histogram
    and the rolling SLO window updates on the hot path, but shedding
    never engages, so both arms admit and complete the same requests
    and ``events`` stays arm-identical (asserted).  A warm-up pass
    populates the module-global plan caches first so neither arm pays
    the cold lowering; arms then alternate best-of-``repeats``.
    """
    from repro.obs.metrics import MetricsRegistry, SloMonitor
    from repro.serve.cli import build_service, default_mix
    from repro.serve.loadgen import closed_loop

    def drive(metrics: Any, slo: Any) -> tuple[float, int, float]:
        with build_service(workers=workers, nprocs=p, metrics=metrics,
                           slo=slo) as service:
            report = closed_loop(service, default_mix(), requests=requests,
                                 concurrency=concurrency, seed=0)
            completions = list(service.completions)
        if report["errors"] or report["rejected"]:
            raise AssertionError(
                f"metrics_overhead run degraded: {report['errors']} errors, "
                f"{report['rejected']} rejections")
        events = sum(rec["events"] for rec in completions)
        makespan = sum(rec["virtual_seconds"] for rec in completions)
        return report["duration_s"], events, makespan

    # Warm the plan/tuned caches (shared module-global state): without
    # this the first-timed arm would eat every cold lowering and the
    # ratio would measure cache warmth, not the metrics plane.
    drive(None, None)

    host_off = host_on = float("inf")
    events = events_on = 0
    makespan = 0.0
    for _ in range(max(1, repeats)):
        off_s, off_e, off_m = drive(None, None)
        registry = MetricsRegistry()
        # 1e6 s rolling p99 target: the monitor observes every request
        # and prunes its window, but breached() can never fire.
        on_s, on_e, _on_m = drive(registry, SloMonitor(1e6, min_samples=8))
        host_off, events, makespan = min(host_off, off_s), off_e, off_m
        host_on, events_on = min(host_on, on_s), on_e
        snap = registry.snapshot()
        observed = sum(s["value"] for s in snap.series
                       if s["name"] == "serve_requests_total")
        if int(observed) != requests:
            raise AssertionError(
                f"metrics arm lost requests: counted {observed}, "
                f"expected {requests}")
    if events_on != events:
        raise AssertionError(
            f"metrics arm diverged: {events_on} events vs {events}")
    return {
        "workload": "metrics_overhead",
        "p": p,
        "host_seconds": round(host_off, 6),
        "events": events,
        "events_per_sec": round(events / host_off) if host_off > 0 else 0,
        "makespan": makespan,
        "requests": requests,
        "host_seconds_metrics": round(host_on, 6),
        "overhead_metrics": (round(host_on / host_off, 2)
                             if host_off > 0 else 0.0),
    }


def bench_stream_chunked(chunk: int, *, items: int = 1024,
                         repeats: int = 2) -> dict[str, Any]:
    """The threaded stream executor: chunked compiled scan over a fixed
    item stream.

    One ``MapPlan`` lowering serves ``items / chunk`` chunk executions
    (the final ragged chunk, when any, lowers once more), so larger
    chunks amortise better but expose less pipeline slack — the row pair
    tracks that trade-off.  Output is validated against the per-chunk
    numpy reference every run.
    """
    import operator as _op

    from repro.scl.nodes import Scan
    from repro.stream.plan import StreamRunStats, stream_plan

    xs = [float(v) for v in
          np.random.default_rng(7).integers(1, 100, size=items)]
    expected: list[float] = []
    for i in range(0, items, chunk):
        expected.extend(np.cumsum(np.asarray(xs[i:i + chunk])))
    plan = (stream_plan(xs).chunk(chunk)
            .map_plan(Scan(_op.add)).unchunk())

    best = float("inf")
    stats: StreamRunStats | None = None
    for _ in range(max(1, repeats)):
        run_stats = StreamRunStats()
        t0 = time.perf_counter()
        out = list(plan.run(stats=run_stats))
        elapsed = time.perf_counter() - t0
        if not np.allclose(out, expected):
            raise AssertionError(
                f"chunked stream diverged from reference at chunk={chunk}")
        if elapsed < best:
            best, stats = elapsed, run_stats
    assert stats is not None
    return {
        "workload": "stream_chunked",
        "p": chunk,
        "host_seconds": round(best, 6),
        "events": stats.sim_events,
        "events_per_sec": round(stats.sim_events / best) if best > 0 else 0,
        "makespan": stats.virtual_seconds,
        "messages": stats.sim_messages,
        "items": items,
        "chunks": stats.chunks,
        "plan_runs": stats.plan_runs,
        "items_per_sec": round(items / best) if best > 0 else 0,
    }


#: Fixed machine size of the gauss-jordan tracked pair (one row, not a
#: per-p sweep: the pair tracks the data plane, not scaling).
GAUSS_PROCS = 8

#: Hypercube dimensions of the ``tuned_hyperquicksort`` search/greedy
#: twin rows (full / quick).  Fixed rows like the gauss pair: they track
#: the search-vs-greedy simulated gap, not scaling.  The quick dimension
#: is the smallest at which the fetch-fusion trap engages (the two
#: barriers the map fusions save must out-price the funnel per round for
#: greedy to take the package).
TUNED_DIM = 7
QUICK_TUNED_DIM = 5

#: Closed-loop client counts of the ``service_sustained`` rows (full /
#: quick).  Like the gauss pair these are fixed rows, not a machine-size
#: sweep: p is the client pool size.
SERVICE_CONCURRENCY = (4, 16)
QUICK_SERVICE_CONCURRENCY = (4,)

#: Chunk sizes of the ``stream_chunked`` rows (full / quick); p is the
#: chunk size, which is also the simulated machine size per chunk.
STREAM_CHUNK_SIZES = (8, 32)
QUICK_STREAM_CHUNKS = (8,)

#: Endpoint machine sizes of the ``metrics_overhead`` twin rows.  Fixed
#: rows in both quick and full suites (the quick baseline is what the
#: perf gate compares): the pair tracks the metrics-off == free claim
#: at a small and a large simulated machine, not scaling.
METRICS_PROCS = (16, 128)


def run_suite(*, procs: tuple[int, ...] | None = None, quick: bool = False,
              only: str | None = None,
              workers: int | None = None) -> dict[str, dict[str, Any]]:
    """Run every workload at every machine size; returns ``{key: record}``.

    Keys look like ``"hyperquicksort/p128"``.  ``quick=True`` shrinks both
    the size list and the per-workload iteration counts for CI smoke runs
    (plus one reduced large-p ring row, the scaling canary).  ``only``
    keeps just the workloads whose key contains the substring (the
    ``--filter`` flag), e.g. ``only="compiled"`` for the optimizer pairs
    alone.  ``procs`` (the ``--procs`` flag) sweeps *every* workload at
    exactly those machine sizes — workloads that require a power-of-two
    size (hypercube-based) are skipped at sizes that aren't one; without
    it the default sizes run, plus large-p ``ring_sweep`` scaling rows.
    ``workers`` (the ``--workers`` flag) sets the pool width of the
    ``parallel_hyperquicksort`` rows (default: host CPU count).
    """
    explicit = procs is not None
    if quick:
        sizes: tuple[int, ...] = QUICK_PROCS
    elif explicit:
        sizes = tuple(procs)
    else:
        sizes = DEFAULT_PROCS
    out: dict[str, dict[str, Any]] = {}

    def run(key: str, thunk: Callable[[], dict[str, Any]]) -> None:
        if only is None or only in key:
            out[key] = thunk()

    for p in sizes:
        # Large explicit sizes get one repeat: the runs are long enough
        # that best-of-2 doubles suite time for little noise reduction.
        reps = 1 if p >= 1024 else 2
        run(f"ring_sweep/p{p}",
            lambda p=p: bench_ring_sweep(p, rounds=30 if quick else 150,
                                         repeats=reps))
        run(f"wildcard_funnel/p{p}",
            lambda p=p: bench_wildcard_funnel(p, per_src=10 if quick else 40,
                                              repeats=reps))
        if p & (p - 1):
            if explicit:
                print(f"note: skipping hypercube workloads at p={p} "
                      f"(not a power of two)", file=sys.stderr)
            continue
        run(f"allreduce/p{p}",
            lambda p=p: bench_allreduce(p, reps=5 if quick else 25,
                                        repeats=reps))
        run(f"hyperquicksort/p{p}",
            lambda p=p: bench_hyperquicksort(p, n=20_000 if quick else 100_000))
        run(f"compiled_hyperquicksort/p{p}",
            lambda p=p: bench_compiled_hyperquicksort(
                p, n=20_000 if quick else 100_000))
        run(f"compiled_hyperquicksort_noopt/p{p}",
            lambda p=p: bench_compiled_hyperquicksort(
                p, n=20_000 if quick else 100_000, opt="off"))
        run(f"trace_overhead/p{p}",
            lambda p=p: bench_trace_overhead(p, n=20_000 if quick else 100_000))
    if quick:
        run(f"ring_sweep/p{QUICK_LARGE_RING}",
            lambda: bench_ring_sweep(QUICK_LARGE_RING, rounds=30, repeats=1))
    elif not explicit:
        for p in LARGE_RING_PROCS:
            run(f"ring_sweep/p{p}",
                lambda p=p: bench_ring_sweep(p, repeats=1))
    gp = GAUSS_PROCS
    gn = 24 if quick else 48
    run(f"compiled_gauss_jordan/p{gp}",
        lambda: bench_compiled_gauss_jordan(gp, n=gn))
    run(f"compiled_gauss_jordan_noopt/p{gp}",
        lambda: bench_compiled_gauss_jordan(gp, n=gn, opt="off"))
    pn = (1 << 17) if quick else (1 << 19)
    for pp in PARALLEL_QUICK_PROCS if quick else PARALLEL_PROCS:
        run(f"parallel_hyperquicksort/p{pp}",
            lambda pp=pp: bench_parallel_hyperquicksort(
                pp, n=pn, workers=workers, repeats=1 if quick else 2))
    tp = 1 << (QUICK_TUNED_DIM if quick else TUNED_DIM)
    tn = 20_000 if quick else 100_000
    run(f"tuned_hyperquicksort/p{tp}",
        lambda: bench_tuned_hyperquicksort(tp, n=tn, strategy="search"))
    run(f"tuned_hyperquicksort_greedy/p{tp}",
        lambda: bench_tuned_hyperquicksort(tp, n=tn, strategy="greedy"))
    for c in (QUICK_SERVICE_CONCURRENCY if quick else SERVICE_CONCURRENCY):
        run(f"service_sustained/p{c}",
            lambda c=c: bench_service_sustained(
                c, requests=200 if quick else 1000))
    for ch in (QUICK_STREAM_CHUNKS if quick else STREAM_CHUNK_SIZES):
        run(f"stream_chunked/p{ch}",
            lambda ch=ch: bench_stream_chunked(
                ch, items=256 if quick else 1024))
    for mp in METRICS_PROCS:
        run(f"metrics_overhead/p{mp}",
            lambda mp=mp: bench_metrics_overhead(
                mp, requests=120 if quick else 240,
                repeats=1 if quick else 2))
    annotate_speedups(out)
    return out


def annotate_speedups(current: dict[str, dict[str, Any]]) -> None:
    """(Re)compute the derived speedup columns of the optimizer pairs.

    ``speedup_vs_noopt`` pairs each optimized compiled row with its
    ``_noopt`` twin from the same suite — both measured in this process,
    so the ratio cancels host speed.  ``speedup_vs_interp`` ratios the
    full-size compiled_hyperquicksort rows against the frozen PR-4 plan
    interpreter (``PLAN_INTERP_BASELINE``).  ``speedup_vs_greedy`` pairs
    the ``tuned_hyperquicksort`` search row with its ``_greedy`` twin on
    *virtual* makespan — the simulated (host-independent) win of the
    cost-driven search declining the fetch-fusion trap.  Idempotent:
    safe to call again after :func:`median_merge` recombines repeats.
    """
    for key, rec in current.items():
        workload, _, psuffix = key.partition("/")
        if workload == "tuned_hyperquicksort":
            twin = current.get(f"tuned_hyperquicksort_greedy/{psuffix}")
            if twin and twin.get("makespan") and rec.get("makespan"):
                rec["speedup_vs_greedy"] = round(
                    twin["makespan"] / rec["makespan"], 3)
            continue
        if workload not in ("compiled_hyperquicksort", "compiled_gauss_jordan"):
            continue
        twin = current.get(f"{workload}_noopt/{psuffix}")
        if twin and rec.get("host_seconds"):
            rec["speedup_vs_noopt"] = round(
                twin["host_seconds"] / rec["host_seconds"], 2)
        base = PLAN_INTERP_BASELINE.get(key)
        if (base and rec.get("host_seconds") and rec.get("n") == 100_000
                and rec["events"] == base["events"]):
            rec["speedup_vs_interp"] = round(
                base["host_seconds"] / rec["host_seconds"], 2)


def median_merge(runs: list[dict[str, dict[str, Any]]]
                 ) -> dict[str, dict[str, Any]]:
    """Combine repeated suite runs into one: per key, the median-host run.

    Picks, for every workload key, the whole record whose ``host_seconds``
    is the (lower) median across the repeats — keeping each record's
    fields mutually consistent — then recomputes the paired speedup
    columns across the merged set.
    """
    import statistics

    merged: dict[str, dict[str, Any]] = {}
    for key in runs[0]:
        recs = [r[key] for r in runs if key in r]
        med = statistics.median_low([rec["host_seconds"] for rec in recs])
        merged[key] = dict(next(rec for rec in recs
                                if rec["host_seconds"] == med))
    annotate_speedups(merged)
    return merged


def _speedups(current: dict[str, dict[str, Any]]) -> dict[str, float]:
    ratios: dict[str, float] = {}
    for key, rec in current.items():
        base = SEED_BASELINE.get(key)
        if base and rec.get("host_seconds"):
            ratios[key] = round(base["host_seconds"] / rec["host_seconds"], 2)
    return ratios


def write_bench_json(path: str, current: dict[str, dict[str, Any]],
                     *, quick: bool = False) -> dict[str, Any]:
    """Assemble and write the machine-readable ``BENCH_simulator.json``."""
    doc = {
        "schema": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "events_metric": "sends + receives per host second",
        "baseline": {
            "label": "seed simulator (pre PR 1: O(p) scan scheduler, linear mailbox)",
            "workloads": SEED_BASELINE,
        },
        "treewalk_baseline": {
            "label": "PR-2 tree-walking SCL compiler (pre Plan IR: "
                     "per-processor recursive _exec)",
            "workloads": TREEWALK_BASELINE,
        },
        "current": current,
        # Quick mode shrinks the per-workload iteration counts, so its host
        # times are not comparable with the full-size seed baseline.
        "speedup_vs_seed": {} if quick else _speedups(current),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc


def render_report(doc: dict[str, Any]) -> str:
    """Human-readable throughput table for a bench document."""
    from repro.util.tables import render_table

    treewalk = doc.get("treewalk_baseline", {}).get("workloads", {})
    rows = []
    for key, rec in doc["current"].items():
        base = doc["baseline"]["workloads"].get(key) or treewalk.get(key, {})
        speedup = (doc["speedup_vs_seed"].get(key)
                   or rec.get("speedup_vs_treewalk"))
        vs_noopt = rec.get("speedup_vs_noopt")
        rows.append([
            key,
            f"{rec['host_seconds']:.3f}",
            f"{rec['events_per_sec']:,}",
            f"{base['host_seconds']:.3f}" if base else "-",
            f"{speedup:.2f}x" if speedup else "-",
            f"{vs_noopt:.2f}x" if vs_noopt else "-",
        ])
    return render_table(
        "Simulator performance (host time; baseline = seed implementation, "
        "or the tree-walk compiler for compiled workloads)",
        ["workload", "host (s)", "events/sec", "base host (s)", "speedup",
         "vs noopt"],
        rows,
        notes="Virtual-time results are engine-invariant; see tests/machine/"
              "test_equivalence.py.  'vs noopt' pairs an optimized compiled "
              "row with its passes-off twin from the same run.")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point of the perf harness; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="Measure simulator host-time performance and write "
                    "BENCH_simulator.json.")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--procs", default=None, metavar="P1,P2,...",
                        help="sweep every workload at exactly these machine "
                             "sizes (comma-separated, e.g. 256,1024,4096); "
                             "hypercube workloads skip sizes that are not "
                             "powers of two")
    parser.add_argument("--output", default="BENCH_simulator.json",
                        help="where to write the JSON report")
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="only run workloads whose key contains SUBSTR "
                             "(e.g. 'compiled' for the optimizer pairs)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run the whole suite N times and report "
                             "per-workload paired medians (noise control "
                             "for the CI perf gate)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker-pool width for the "
                             "parallel_hyperquicksort rows (default: host "
                             "CPU count)")
    parser.add_argument("--emit-baseline", action="store_true",
                        help="print the suite results as a SEED_BASELINE "
                             "python literal (maintenance tool)")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    procs: tuple[int, ...] | None = None
    if args.procs is not None:
        try:
            procs = tuple(int(tok) for tok in args.procs.split(",") if tok)
        except ValueError:
            procs = ()
        if not procs or any(p < 2 for p in procs):
            print(f"error: --procs must be a comma-separated list of "
                  f"machine sizes >= 2, got {args.procs!r}", file=sys.stderr)
            return 2
        if args.quick:
            print("error: --procs and --quick are mutually exclusive",
                  file=sys.stderr)
            return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    runs = [run_suite(procs=procs, quick=args.quick, only=args.filter,
                      workers=args.workers)
            for _ in range(args.repeat)]
    if not runs[0]:
        print(f"error: --filter {args.filter!r} matches no workload",
              file=sys.stderr)
        return 2
    current = runs[0] if args.repeat == 1 else median_merge(runs)
    if args.emit_baseline:
        slim = {k: {"host_seconds": v["host_seconds"],
                    "events": v["events"],
                    "events_per_sec": v["events_per_sec"]}
                for k, v in current.items()}
        print(json.dumps(slim, indent=4))
        return 0
    try:
        doc = write_bench_json(args.output, current, quick=args.quick)
    except OSError as exc:
        print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
        return 2
    print(render_report(doc))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
