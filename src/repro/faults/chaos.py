"""Chaos harness: sweep fault rates over the fault-tolerant example apps.

::

    python -m repro chaos --app hyperquicksort --p 32 --drop-rate 0.01 --seed 7
    python -m repro chaos --app mapreduce --p 16 --crash-master
    python -m repro chaos                      # default low-rate drop sweep

Every requested fault rate produces one run of the chosen app under a
seeded :class:`~repro.faults.models.FaultSpec`; the harness verifies the
*result is still correct* (sorted output / map-reduce total), and prints a
survival/overhead table: virtual makespan, slowdown relative to the
fault-free baseline, and the retransmit/timeout/drop/crash counters from
:func:`repro.machine.metrics.fault_counters`.  Same seed, same table —
every fault decision is a pure hash of the seed (see
:mod:`repro.faults.models`).

``--out`` additionally writes the table as a JSON artifact (used by the
CI chaos smoke job).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

import numpy as np

from repro.machine import AP1000, MODERN_CLUSTER, PERFECT
from repro.machine.metrics import fault_counters
from repro.runtime.chunking import chunk_indices
from repro.util.tables import render_table
from repro.faults.models import FaultSpec
from repro.faults.apps import ft_hyperquicksort_machine
from repro.faults.runtime import CheckpointStore, ft_map_machine

__all__ = ["main", "build_parser", "run_sweep"]

_SPECS = {"ap1000": AP1000, "modern": MODERN_CLUSTER, "perfect": PERFECT}
#: Default drop-rate sweep when no rates are given on the command line.
_DEFAULT_SWEEP = [0.0, 0.005, 0.01, 0.02]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the chaos harness (``python -m repro chaos``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Fault-injection sweep over the fault-tolerant apps.")
    parser.add_argument("--app", choices=["hyperquicksort", "mapreduce"],
                        default="hyperquicksort",
                        help="which fault-tolerant app to stress")
    parser.add_argument("--p", type=int, default=32,
                        help="processor count (power of two for "
                             "hyperquicksort)")
    parser.add_argument("-n", type=int, default=20_000,
                        help="workload size")
    parser.add_argument("--seed", type=int, default=7,
                        help="seed for both the workload and every fault "
                             "decision")
    parser.add_argument("--drop-rate", type=float, action="append",
                        default=None, metavar="R",
                        help="message drop probability (repeatable; default "
                             f"sweep {_DEFAULT_SWEEP})")
    parser.add_argument("--dup-rate", type=float, default=0.0,
                        help="message duplication probability")
    parser.add_argument("--delay-rate", type=float, default=0.0,
                        help="message delay probability")
    parser.add_argument("--delay-seconds", type=float, default=0.002,
                        help="virtual lateness of a delayed message")
    parser.add_argument("--corrupt-rate", type=float, default=0.0,
                        help="payload corruption probability")
    parser.add_argument("--crash", action="append", default=[],
                        metavar="PID@TIME",
                        help="crash processor PID at virtual TIME seconds "
                             "(repeatable; mapreduce only)")
    parser.add_argument("--crash-master", action="store_true",
                        help="mapreduce: crash the master mid-run to "
                             "exercise checkpoint/restart")
    parser.add_argument("--spec", choices=sorted(_SPECS), default="ap1000",
                        help="machine cost model")
    parser.add_argument("--out", default=None,
                        help="also write the table as JSON to this path")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a repro.obs.metrics/v1 artifact with "
                             "the machine_faults_total counters per rate")
    return parser


def _parse_crashes(entries: list[str]) -> dict[int, float]:
    crashes: dict[int, float] = {}
    for entry in entries:
        try:
            pid_s, time_s = entry.split("@", 1)
            crashes[int(pid_s)] = float(time_s)
        except ValueError:
            raise SystemExit(
                f"error: --crash expects PID@TIME, got {entry!r}") from None
    return crashes


def _run_hyperquicksort(args: argparse.Namespace, fs: FaultSpec,
                        values: np.ndarray, expected: np.ndarray
                        ) -> dict[str, Any]:
    d = args.p.bit_length() - 1
    out, res = ft_hyperquicksort_machine(values, d, spec=args.spec,
                                         faults=fs)
    counters = fault_counters(res)
    return {
        "ok": bool(np.array_equal(np.asarray(out), expected)),
        "makespan": res.makespan,
        "restarts": 0,
        **counters,
    }


def _run_mapreduce(args: argparse.Namespace, fs: FaultSpec,
                   values: np.ndarray, expected: int) -> dict[str, Any]:
    jobs = [values[lo:hi] for lo, hi in
            chunk_indices(len(values), max(4 * args.p, args.p))]
    results, runs = ft_map_machine(
        jobs, lambda chunk: int(np.sum(np.asarray(chunk, dtype=np.int64) ** 2)),
        nprocs=args.p, spec=args.spec, faults=fs,
        cost_fn=lambda chunk: 3.0 * len(chunk),
        checkpoint=CheckpointStore())
    total = sum(results)
    counters = {"retransmits": 0, "timeouts": 0, "dropped": 0, "crashed": 0}
    for run in runs:
        for key, value in fault_counters(run).items():
            counters[key] += value
    return {
        "ok": bool(total == expected),
        "makespan": sum(run.makespan for run in runs),
        "restarts": len(runs) - 1,
        **counters,
    }


def run_sweep(args: argparse.Namespace) -> list[dict[str, Any]]:
    """Run the sweep and return one row dict per (baseline + rate) run."""
    rng = np.random.default_rng(args.seed)
    values = rng.integers(0, 2**20, size=args.n).astype(np.int64)
    crashes = _parse_crashes(args.crash)

    rates = args.drop_rate if args.drop_rate else list(_DEFAULT_SWEEP)
    if 0.0 not in rates:
        rates = [0.0] + rates  # the fault-free baseline anchors overhead

    if args.app == "hyperquicksort":
        if args.p < 2 or args.p & (args.p - 1):
            raise SystemExit("error: --p must be a power of two >= 2 for "
                             "hyperquicksort")
        if crashes or args.crash_master:
            raise SystemExit("error: crash scenarios need --app mapreduce "
                             "(a crashed sorter loses its data block; see "
                             "repro.faults.apps)")
        expected: Any = np.sort(values)
        runner = _run_hyperquicksort
    else:
        expected = int(np.sum(values.astype(np.int64) ** 2))
        runner = _run_mapreduce

    rows: list[dict[str, Any]] = []
    baseline: float | None = None
    for rate in rates:
        fs = FaultSpec(
            seed=args.seed,
            drop_rate=rate,
            dup_rate=args.dup_rate,
            delay_rate=args.delay_rate,
            delay_seconds=args.delay_seconds,
            corrupt_rate=args.corrupt_rate,
            crash_at={} if rate == 0.0 else dict(crashes),
        )
        if args.crash_master and rate != 0.0 and baseline is not None:
            # Kill the coordinator a third of the way into the (baseline)
            # schedule: late enough to have committed work, early enough
            # that the restart has real work left.
            fs = fs.replace(crash_at={**fs.crash_at, 0: baseline / 3.0})
        row = runner(args, fs, values, expected)
        row["drop_rate"] = rate
        if rate == 0.0:
            baseline = row["makespan"]
        row["overhead"] = (row["makespan"] / baseline
                           if baseline else float("nan"))
        rows.append(row)
    return rows


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro chaos``; returns an exit code."""
    args = build_parser().parse_args(argv)
    args.spec = _SPECS[args.spec]

    rows = run_sweep(args)

    table_rows = [[f"{r['drop_rate']:.3f}",
                   "ok" if r["ok"] else "FAILED",
                   f"{r['makespan']:.4f}",
                   f"{r['overhead']:.2f}x",
                   r["retransmits"], r["timeouts"], r["dropped"],
                   r["crashed"], r["restarts"]]
                  for r in rows]
    print(render_table(
        f"Chaos sweep: {args.app}, p={args.p}, n={args.n}, "
        f"seed={args.seed} ({args.spec.name})",
        ["drop", "result", "makespan (s)", "overhead", "rtx", "timeouts",
         "dropped", "crashed", "restarts"],
        table_rows,
        notes="Deterministic: same seed + spec => identical table."))

    if args.out:
        artifact = {
            "app": args.app, "p": args.p, "n": args.n, "seed": args.seed,
            "spec": args.spec.name, "rows": rows,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, default=float)
        print(f"wrote {args.out}")

    if args.metrics_out:
        from repro.obs.metrics import (MetricsRegistry, metrics_artifact,
                                       observe_fault_counters)

        registry = MetricsRegistry()
        for row in rows:
            observe_fault_counters(
                registry,
                {k: row[k] for k in ("retransmits", "timeouts", "dropped",
                                     "crashed")},
                labels={"app": args.app,
                        "drop_rate": f"{row['drop_rate']:g}"})
        doc = metrics_artifact([registry.snapshot()],
                               generated_by="python -m repro chaos")
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, default=str)
        print(f"wrote {args.metrics_out}")

    return 0 if all(r["ok"] for r in rows) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
