"""Fault-tolerant plan execution: the same Plan IR over a reliable channel.

The raw plan interpreter (:mod:`repro.machine.plan_exec`) assumes a
perfect network.  This module executes the *identical*
:class:`~repro.plan.ir.Plan` with every instruction's traffic moved onto
the resilience layer, so any compiled SCL expression gets fault-tolerant
execution without being hand-ported:

* ``Exchange``/``Rotate`` tables replay as acked, retransmitted
  :class:`~repro.machine.reliable.ReliableChannel` transfers.  A
  symmetric pairwise pattern (hyperquicksort's partner exchange) is
  detected from the tables and uses :meth:`ReliableChannel.exchange`,
  which services the partner's data while awaiting its own ack; all
  other patterns send first and then receive — safe for arbitrary cycles
  because every channel wait *pumps* (acks and stashes incoming frames),
* collectives become the linear, crash-aware patterns of
  :mod:`repro.machine.collectives_ft` (``fold`` → ``ft_reduce`` +
  ``ft_bcast``; broadcasts → ``ft_bcast``; ``scan`` → a reliable linear
  chain),
* group instructions behave exactly as in the raw interpreter — the
  channel addresses peers by *pid*, so one channel serves every subgroup.

The message pattern (and therefore the virtual cost) differs from the
raw interpreter's; the computed values do not.
"""

from __future__ import annotations

from typing import Any

from repro.core.pararray import ParArray
from repro.errors import SkeletonError
from repro.machine import tags
from repro.machine.api import Comm
from repro.machine.collectives_ft import ft_bcast, ft_reduce
from repro.machine.plan_exec import EXCHANGE_TAG, Grouped
from repro.machine.reliable import ReliableChannel
from repro.machine.simulator import Machine, RunResult
from repro.plan import ir
from repro.plan.lower import lower

__all__ = ["execute_plan_ft", "run_expression_ft"]

#: Tag of the reliable scan chain (exchange traffic reuses EXCHANGE_TAG).
SCAN_TAG = tags.reserve("plan", "scan-chain", 1)


def execute_plan_ft(plan: ir.Plan, env, comm: Comm, chan: ReliableChannel,
                    local: Any, default: float = ir.DEFAULT_FRAGMENT_OPS,
                    label: str = "plan"):
    """Run ``plan`` on this processor with all traffic on ``chan``.

    On a traced machine the same span stack as the raw interpreter is
    pushed (``label → [i] instruction → iter k``), so chaos-run traces
    attribute retransmits/drops/timeouts to plan instructions too.
    """
    if env.tracing:
        with env.span(label):
            return (yield from _run_seq_spanned(plan.instrs, plan, env, comm,
                                                chan, local, default))
    return (yield from _run_seq(plan.instrs, plan, env, comm, chan, local,
                                default))


def _run_seq(instrs, plan, env, comm, chan, local, default):
    for instr in instrs:
        local = yield from _step(instr, plan, env, comm, chan, local, default)
    return local


def _run_seq_spanned(instrs, plan, env, comm, chan, local, default):
    for i, instr in enumerate(instrs):
        with env.span(ir.instr_title(instr), instr=i):
            local = yield from _step_spanned(instr, plan, env, comm, chan,
                                             local, default)
    return local


def _step_spanned(instr, plan, env, comm, chan, local, default):
    if isinstance(instr, ir.Loop):
        for it, body in enumerate(instr.bodies):
            with env.span(f"iter {it}", iteration=it):
                local = yield from _run_seq_spanned(body, plan, env, comm,
                                                    chan, local, default)
        return local
    if isinstance(instr, ir.SubPlan):
        subplan = instr.plans[local.gid]
        inner = yield from _run_seq_spanned(subplan.instrs, subplan, env,
                                            local.comm, chan, local.local,
                                            default)
        return Grouped(local.comm, local.parent, inner, local.gid)
    return (yield from _step(instr, plan, env, comm, chan, local, default))


def _is_pair_swap(instr: ir.Exchange, r: int) -> bool:
    """True when rank ``r``'s row of the tables is a mutual 1:1 swap."""
    if len(instr.sends[r]) != 1 or len(instr.recvs[r]) != 1:
        return False
    (peer,) = instr.sends[r]
    if peer == r or instr.recvs[r] != (peer,):
        return False
    return instr.sends[peer] == (r,) and instr.recvs[peer] == (r,)


def _step(instr, plan, env, comm, chan, local, default):
    if isinstance(instr, ir.LocalApply):
        if isinstance(instr.fn, ir.FusedKernel):
            idx = (divmod(comm.rank, plan.grid[1])
                   if plan.grid is not None else comm.rank)
            result, ops = ir.apply_fused(instr.fn, idx, local, default)
            yield env.work(ops)
            return result
        yield env.work(ir.fragment_ops(instr.fn, local, default))
        if instr.indexed:
            idx = (divmod(comm.rank, plan.grid[1])
                   if plan.grid is not None else comm.rank)
            return instr.fn(idx, local)
        if instr.farm_env is not ir.NO_ENV:
            return instr.fn(instr.farm_env, local)
        return instr.fn(local)

    if isinstance(instr, ir.Rotate):
        p = comm.size
        k = instr.k
        dst, src = (comm.rank - k) % p, (comm.rank + k) % p
        if dst == src and dst != comm.rank:
            return (yield from chan.exchange(comm.pid_of(dst), local,
                                             tag=EXCHANGE_TAG))
        yield from chan.send(comm.pid_of(dst), local, tag=EXCHANGE_TAG)
        return (yield from chan.recv(comm.pid_of(src), tag=EXCHANGE_TAG))

    if isinstance(instr, ir.Exchange):
        r = comm.rank
        if _is_pair_swap(instr, r):
            (peer,) = instr.sends[r]
            theirs = yield from chan.exchange(comm.pid_of(peer), local,
                                              tag=EXCHANGE_TAG)
            return (local, theirs) if instr.mode == "pair" else theirs
        for dst in instr.sends[r]:
            yield from chan.send(comm.pid_of(dst), local, tag=EXCHANGE_TAG)
        if instr.mode == "collect":
            arrivals = []
            for src in instr.recvs[r]:
                if src == r:
                    arrivals.append(local)
                else:
                    arrivals.append((yield from chan.recv(
                        comm.pid_of(src), tag=EXCHANGE_TAG)))
            return arrivals
        (src,) = instr.recvs[r]
        fetched = local if src == r else (yield from chan.recv(
            comm.pid_of(src), tag=EXCHANGE_TAG))
        return (local, fetched) if instr.mode == "pair" else fetched

    if isinstance(instr, ir.Collective):
        return (yield from _collective(instr, env, comm, chan, local,
                                       default))

    if isinstance(instr, ir.GroupSplit):
        gid = instr.group_of[comm.rank]
        sub = comm.subgroup(list(instr.groups[gid]))
        return Grouped(sub, comm, local, gid)

    if isinstance(instr, ir.SubPlan):
        subplan = instr.plans[local.gid]
        inner = yield from _run_seq(subplan.instrs, subplan, env, local.comm,
                                    chan, local.local, default)
        return Grouped(local.comm, local.parent, inner, local.gid)

    if isinstance(instr, ir.GroupCombine):
        return local.local

    if isinstance(instr, ir.Loop):
        for body in instr.bodies:
            local = yield from _run_seq(body, plan, env, comm, chan, local,
                                        default)
        return local

    raise AssertionError(f"unknown plan instruction {instr!r}")


def _collective(instr, env, comm, chan, local, default):
    # ``instr.algo`` is deliberately ignored here: the resilient
    # collectives of :mod:`repro.machine.collectives_ft` are crash-aware
    # linear patterns with their own message schedules — an optimizer
    # algo choice priced for the fault-free interpreter has no meaning on
    # this channel.  Optimized plans still run correctly (fusion and
    # coalescing apply unchanged); only the schedule hint is dropped.
    if instr.kind == "fold":
        acc = yield from ft_reduce(chan, comm, local, instr.op, root=0)
        acc = yield from ft_bcast(chan, comm, acc, root=0)
        return ir.Scalar(acc)
    if instr.kind == "scan":
        # inclusive prefix as a reliable linear chain in rank order
        r, p = comm.rank, comm.size
        out = local
        if r > 0:
            prefix = yield from chan.recv(comm.pid_of(r - 1), tag=SCAN_TAG)
            out = instr.op(prefix, local)
        if r < p - 1:
            yield from chan.send(comm.pid_of(r + 1), out, tag=SCAN_TAG)
        return out
    if instr.kind == "bcast":
        value = yield from ft_bcast(
            chan, comm, instr.value if comm.rank == 0 else None)
        return (value, local)
    if instr.kind == "apply_bcast":
        if comm.rank == instr.root:
            yield env.work(ir.fragment_ops(instr.op, local, default))
            piece = instr.op(local)
        else:
            piece = None
        piece = yield from ft_bcast(chan, comm, piece, root=instr.root)
        return (piece, local)
    raise AssertionError(f"unknown collective kind {instr.kind!r}")


def run_expression_ft(expr, pa: ParArray, machine: Machine, *,
                      fragment_default_ops: float = ir.DEFAULT_FRAGMENT_OPS,
                      channel_timeout: float | None = None,
                      max_retries: int = 8,
                      label: str = "program",
                      opt: Any = "auto") -> tuple[Any, RunResult]:
    """Compile ``expr`` and run it fault-tolerantly on ``machine``.

    The plan-level counterpart of
    :func:`repro.scl.compile.run_expression`: the same lowering, cache
    and plan optimizer (``opt`` as in
    :class:`~repro.scl.compile.CompiledProgram` — fusion and coalescing
    apply to the resilient run too; collective ``algo`` hints and the
    scripted data plane do not, since traffic here is retransmitted and
    timing-dependent), but execution over a :class:`ReliableChannel` per
    processor — use with a machine constructed with a fault injector.
    """
    from repro.scl.compile import resolve_opt

    if not isinstance(pa, ParArray) or pa.ndim not in (1, 2):
        raise SkeletonError("compiled programs take a 1-D or 2-D ParArray input")
    if pa.size != machine.nprocs:
        raise SkeletonError(
            f"expression input has {pa.size} components but the machine "
            f"has {machine.nprocs} processors")
    values = pa.to_list()
    shape = pa.shape
    plan = lower(expr, machine.nprocs, shape if len(shape) == 2 else None,
                 opt=resolve_opt(opt, machine))

    def program(env):
        chan = ReliableChannel(env, timeout=channel_timeout,
                               max_retries=max_retries)
        result = yield from execute_plan_ft(plan, env, Comm.world(env), chan,
                                            values[env.pid],
                                            fragment_default_ops, label)
        # Stay on the line until peers stop retransmitting: our last acks
        # may have been lost, and an exited program can't re-ack.
        with env.span("drain"):
            yield from chan.drain()
        return result

    res = machine.run(program)
    if res.values and isinstance(res.values[0], ir.Scalar):
        return res.values[0].value, res
    if len(shape) == 2:
        rows, cols = shape
        return ParArray(
            {(i, j): res.values[i * cols + j]
             for i in range(rows) for j in range(cols)}, shape), res
    return ParArray(res.values), res
