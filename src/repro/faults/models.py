"""Deterministic fault models for the simulated machine.

A :class:`FaultSpec` declares *what* can go wrong (rates and schedules);
a :class:`FaultInjector` turns it into the narrow hook protocol the
simulator consumes (``Machine(..., faults=FaultInjector(spec))``).

Every probabilistic decision is a **pure hash** of
``(seed, decision-kind, src, dst, tag, seq)`` — no host RNG object, no
mutable stream state.  Two consequences the test-suite leans on:

* the same seed and spec give bit-identical runs (drops, delays,
  duplicates and corruptions land on exactly the same messages), and
* decisions are *local*: whether message ``seq`` is dropped does not
  depend on how many messages were sent before it, so unrelated program
  changes do not reshuffle the fault pattern wholesale.

An all-zero-rate spec is the identity: the injector then asks the
simulator for single, undelayed, uncorrupted deliveries whose arithmetic
(``x * 1.0``, ``x + 0.0``) is bit-identical to the fault-free path.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping

from repro.errors import MachineError

__all__ = ["Corrupted", "FaultSpec", "FaultInjector"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
#: One delivery, on time, intact — the fault-free outcome tuple.
_CLEAN = ((0.0, False),)


def _mix(z: int) -> int:
    """splitmix64 finaliser: a high-quality 64-bit avalanche."""
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _u01(seed: int, *parts: int) -> float:
    """A uniform [0, 1) draw, a pure function of ``(seed, *parts)``."""
    h = _mix((seed + _GOLDEN) & _MASK64)
    for p in parts:
        h = _mix(((h ^ (p & _MASK64)) + _GOLDEN) & _MASK64)
    return (h >> 11) * (1.0 / (1 << 53))


class Corrupted:
    """Wrapper an injector substitutes for a corrupted payload.

    The original payload is kept (simulation is observable), but any layer
    that checks frame structure — e.g. ``repro.machine.reliable`` — will
    see an unusable object and treat the message as garbage on the wire.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any):
        self.original = original

    def __repr__(self) -> str:
        return f"Corrupted({self.original!r})"


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """Declarative description of the faults to inject (all off by default).

    Message faults (independent per message, decided by hash):

    * ``drop_rate`` — probability a message never arrives,
    * ``dup_rate`` — probability a message is delivered twice,
    * ``delay_rate`` / ``delay_seconds`` — probability a message is late,
      and by how much (also the lag of a duplicate's second copy),
    * ``corrupt_rate`` — probability the payload arrives as
      :class:`Corrupted`.

    Link/node degradation (deterministic schedules):

    * ``slow_links`` — ``(src, dst)`` pairs whose wire time is multiplied
      by ``link_slowdown``; an *empty* set with ``link_slowdown != 1``
      slows **every** link,
    * ``slow_nodes`` — ``pid -> factor`` compute-time multipliers,
    * ``crash_at`` — ``pid -> virtual time`` of permanent node death.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    corrupt_rate: float = 0.0
    link_slowdown: float = 1.0
    slow_links: frozenset[tuple[int, int]] = frozenset()
    slow_nodes: Mapping[int, float] = dataclasses.field(
        default_factory=dict)
    crash_at: Mapping[int, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        for field in ("drop_rate", "dup_rate", "delay_rate", "corrupt_rate"):
            v = getattr(self, field)
            if not (0.0 <= v <= 1.0):
                raise MachineError(
                    f"FaultSpec.{field} must be in [0, 1], got {v!r}")
        if not (self.delay_seconds >= 0.0
                and math.isfinite(self.delay_seconds)):
            raise MachineError(
                f"FaultSpec.delay_seconds must be finite and non-negative, "
                f"got {self.delay_seconds!r}")
        if not (self.link_slowdown >= 1.0
                and math.isfinite(self.link_slowdown)):
            raise MachineError(
                f"FaultSpec.link_slowdown must be >= 1, got "
                f"{self.link_slowdown!r}")
        object.__setattr__(self, "slow_links",
                           frozenset(self.slow_links))
        object.__setattr__(self, "slow_nodes", dict(self.slow_nodes))
        object.__setattr__(self, "crash_at", dict(self.crash_at))
        for pid, factor in self.slow_nodes.items():
            if not (factor >= 1.0 and math.isfinite(factor)):
                raise MachineError(
                    f"FaultSpec.slow_nodes[{pid}] must be >= 1, got "
                    f"{factor!r}")
        for pid, at in self.crash_at.items():
            if not (at >= 0.0 and math.isfinite(at)):
                raise MachineError(
                    f"FaultSpec.crash_at[{pid}] must be finite and "
                    f"non-negative, got {at!r}")

    def replace(self, **changes: Any) -> "FaultSpec":
        """A copy of this spec with some fields changed."""
        return dataclasses.replace(self, **changes)

    @property
    def is_identity(self) -> bool:
        """True iff this spec injects nothing at all."""
        return (self.drop_rate == 0.0 and self.dup_rate == 0.0
                and self.delay_rate == 0.0 and self.corrupt_rate == 0.0
                and self.link_slowdown == 1.0
                and not self.slow_nodes and not self.crash_at)


class FaultInjector:
    """The simulator-facing realisation of a :class:`FaultSpec`.

    Implements the hook protocol documented in
    :mod:`repro.machine.simulator`; stateless across runs apart from the
    processor count captured by :meth:`begin_run` for validation.
    """

    __slots__ = ("spec", "_nprocs", "_message_faults", "_all_links_slow")

    def __init__(self, spec: FaultSpec):
        if not isinstance(spec, FaultSpec):
            raise MachineError(
                f"FaultInjector needs a FaultSpec, got {type(spec).__name__}")
        self.spec = spec
        self._nprocs = 0
        self._message_faults = (spec.drop_rate > 0.0 or spec.dup_rate > 0.0
                                or spec.delay_rate > 0.0
                                or spec.corrupt_rate > 0.0)
        self._all_links_slow = (spec.link_slowdown != 1.0
                                and not spec.slow_links)

    # -- hook protocol ----------------------------------------------------

    def begin_run(self, nprocs: int) -> None:
        """Validate the spec against the machine size at run start."""
        self._nprocs = nprocs
        for pid in self.spec.crash_at:
            if not (0 <= pid < nprocs):
                raise MachineError(
                    f"FaultSpec.crash_at names pid {pid}, but the machine "
                    f"has {nprocs} processors")
        for pid in self.spec.slow_nodes:
            if not (0 <= pid < nprocs):
                raise MachineError(
                    f"FaultSpec.slow_nodes names pid {pid}, but the machine "
                    f"has {nprocs} processors")

    def crash_time(self, pid: int) -> float | None:
        """Virtual time at which ``pid`` dies, or ``None``."""
        return self.spec.crash_at.get(pid)

    def compute_factor(self, pid: int) -> float:
        """Compute-time multiplier for ``pid`` (1.0 = nominal)."""
        return self.spec.slow_nodes.get(pid, 1.0)

    def link_factor(self, src: int, dst: int) -> float:
        """Wire-time multiplier for the ``src -> dst`` link."""
        spec = self.spec
        if self._all_links_slow:
            return spec.link_slowdown
        if spec.slow_links and (src, dst) in spec.slow_links:
            return spec.link_slowdown
        return 1.0

    def deliveries(self, src: int, dst: int, tag: int, nbytes: int,
                   seq: int) -> tuple[tuple[float, bool], ...]:
        """Delivery outcomes for one message: ``((extra_delay, corrupt), ...)``.

        Empty tuple = dropped; two entries = duplicated.  Decisions hash
        ``(seed, kind, src, dst, tag, seq)`` so they are independent per
        message and reproducible per seed.
        """
        if not self._message_faults:
            return _CLEAN
        spec = self.spec
        seed = spec.seed
        if spec.drop_rate > 0.0 and _u01(seed, 1, src, dst, tag,
                                         seq) < spec.drop_rate:
            return ()
        delay = 0.0
        if spec.delay_rate > 0.0 and _u01(seed, 2, src, dst, tag,
                                          seq) < spec.delay_rate:
            delay = spec.delay_seconds
        corrupt = (spec.corrupt_rate > 0.0
                   and _u01(seed, 3, src, dst, tag, seq) < spec.corrupt_rate)
        first = (delay, corrupt)
        if spec.dup_rate > 0.0 and _u01(seed, 4, src, dst, tag,
                                        seq) < spec.dup_rate:
            # The duplicate trails the original by the delay quantum (or
            # arrives simultaneously if no delay is configured) and is
            # never independently corrupted.
            return (first, (delay + spec.delay_seconds, False))
        if first == (0.0, False):
            return _CLEAN
        return (first,)

    def corrupt_payload(self, payload: Any) -> Corrupted:
        """Replace ``payload`` with its :class:`Corrupted` wrapper."""
        return Corrupted(payload)

    def __repr__(self) -> str:
        return f"FaultInjector({self.spec!r})"
