"""Fault-tolerant skeleton runtime: a crash-surviving ``farm``/``map``.

The paper's ``farm``/``parmap`` skeletons assume every processor finishes.
This module provides the machine-level counterpart that doesn't:
:func:`ft_farm` is a master/worker *pull* farm over the reliable messaging
layer in which

* workers request jobs and stream back results (idempotently keyed by job
  index, so a job computed twice commits once),
* the master *suspects* silent workers after a timeout and requeues their
  outstanding jobs to other live workers — reassignment from dead to live
  processors,
* if no workers respond at all, the master computes remaining jobs
  locally, so the farm completes even when every worker has crashed,
* every committed result is recorded in an optional host-side
  :class:`CheckpointStore` ("stable storage"), so a run that loses its
  *master* can be restarted and will skip completed jobs.

:func:`ft_map_machine` wraps the whole story: build the machine with a
fault injector, run the farm, and — if the master crashed — restart from
the checkpoint on a repaired machine (crash schedule cleared, message
faults kept), up to ``max_restarts`` times.

Timeout-based suspicion is deliberate: a worker busy inside ``env.work``
cannot answer pings (the simulated processor is single-threaded, exactly
like an AP1000 cell), so liveness can only be inferred from silence.
A slow-but-alive worker may therefore get its job requeued; idempotent
commits make that safe.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Sequence

from repro.errors import FaultError, MachineError
from repro.machine import Machine, MachineSpec, AP1000
from repro.machine import tags
from repro.machine.events import ANY
from repro.machine.reliable import ReliableChannel
from repro.machine.simulator import ProcEnv, RunResult
from repro.machine.topology import Topology
from repro.faults.models import FaultInjector, FaultSpec

__all__ = ["CheckpointStore", "ft_farm", "ft_map_machine"]

# worker -> master: ("ready", pid) / ("done", pid, idx, value)
_TAG_CTRL = tags.reserve("ft-runtime", "ctrl", 0)
# master -> worker: ("job", idx, item) / ("stop",)
_TAG_JOB = tags.reserve("ft-runtime", "job", 1)

Gen = Generator[Any, Any, Any]


class CheckpointStore:
    """Host-side stable storage of committed ``(job index, result)`` pairs.

    Lives *outside* the simulated machine (a checkpoint that died with the
    machine would be useless), so it survives across :meth:`Machine.run`
    invocations: a restarted farm passes the same store and skips the jobs
    it already holds.  Commits are idempotent — the first result for an
    index wins, so a reassigned job that completes twice is recorded once.
    """

    def __init__(self) -> None:
        self._results: dict[int, Any] = {}

    def record(self, idx: int, value: Any) -> None:
        """Commit ``value`` for job ``idx`` (no-op if already committed)."""
        self._results.setdefault(idx, value)

    def completed(self) -> set[int]:
        """Indices with committed results."""
        return set(self._results)

    def result(self, idx: int) -> Any:
        return self._results[idx]

    def __len__(self) -> int:
        return len(self._results)

    def __repr__(self) -> str:
        return f"CheckpointStore({len(self._results)} committed)"


def ft_farm(env: ProcEnv, items: Sequence[Any],
            fn: Callable[[Any], Any], *,
            cost_fn: Callable[[Any], float] | None = None,
            master: int = 0,
            checkpoint: CheckpointStore | None = None,
            chan: ReliableChannel | None = None,
            suspicion_timeout: float | None = None,
            worker_patience: float | None = None) -> Gen:
    """SPMD fault-tolerant farm program (run it on every processor).

    The ``master`` pid coordinates: it hands out one job at a time to
    pulling workers, requeues jobs of workers that fall silent, and
    computes leftovers itself if the whole workforce dies.  Master returns
    the full result list (index-aligned with ``items``); workers return
    the number of jobs they completed; a worker that loses its master
    returns early with its count.

    ``cost_fn(item)`` gives the virtual ops charged per job (default: a
    nominal 1000 ops).  ``suspicion_timeout`` is how long the master waits
    in silence before requeueing outstanding jobs; ``worker_patience`` how
    long a worker waits for a job before presuming the master dead.
    """
    if not (0 <= master < env.nprocs):
        raise MachineError(
            f"master pid {master} out of range for {env.nprocs} processors")
    if chan is None:
        chan = ReliableChannel(env)
    ops = cost_fn if cost_fn is not None else (lambda item: 1000.0)
    n_jobs = len(items)
    pid = env.pid

    if suspicion_timeout is None:
        suspicion_timeout = chan.worst_case_send_seconds() * 2.0
    if worker_patience is None:
        # Long enough for the master to serve every peer, requeue once,
        # and still come back to us.
        worker_patience = (suspicion_timeout * (env.nprocs + 2)
                           + chan.worst_case_send_seconds() * env.nprocs)

    # ---------------- worker ----------------
    if pid != master:
        done_count = 0
        try:
            yield from chan.send(master, ("ready", pid), tag=_TAG_CTRL)
            while True:
                cmd = yield from chan.recv(master, tag=_TAG_JOB,
                                           timeout=worker_patience)
                if cmd[0] == "stop":
                    break
                _, idx, item = cmd
                yield env.work(ops(item))
                value = fn(item)
                done_count += 1
                yield from chan.send(master, ("done", pid, idx, value),
                                     tag=_TAG_CTRL)
        except FaultError:
            # Master presumed dead (or unreachable): stop working.  The
            # checkpoint on the host keeps whatever we already committed.
            pass
        return done_count

    # ---------------- master ----------------
    results: dict[int, Any] = {}
    if checkpoint is not None:
        for idx in checkpoint.completed():
            if 0 <= idx < n_jobs:
                results[idx] = checkpoint.result(idx)
    pending: deque[int] = deque(i for i in range(n_jobs)
                                if i not in results)
    outstanding: dict[int, int] = {}     # job idx -> worker pid
    live: set[int] = set()
    parked: deque[int] = deque()         # idle live workers awaiting jobs

    def commit(idx: int, value: Any) -> None:
        if idx not in results:
            results[idx] = value
            if checkpoint is not None:
                checkpoint.record(idx, value)

    def dispatch(worker: int) -> Gen:
        """Send the next uncompleted job to ``worker`` (or park it)."""
        while pending:
            idx = pending.popleft()
            if idx in results:
                continue
            try:
                yield from chan.send(worker, ("job", idx, items[idx]),
                                     tag=_TAG_JOB)
            except FaultError:
                live.discard(worker)
                pending.appendleft(idx)
                return
            outstanding[idx] = worker
            return
        if worker not in parked:
            parked.append(worker)

    while len(results) < n_jobs:
        try:
            msg = yield from chan.recv(ANY, tag=_TAG_CTRL,
                                       timeout=suspicion_timeout)
        except FaultError:
            # Silence: every outstanding job's worker is now suspect.
            # Requeue, then hand the jobs to parked workers — that is the
            # dead-to-live reassignment — or, with nobody left, make
            # progress locally so the farm terminates regardless.
            if outstanding:
                for idx in sorted(outstanding):
                    if idx not in results:
                        pending.appendleft(idx)
                outstanding.clear()
            while parked and pending:
                yield from dispatch(parked.popleft())
            if not outstanding and pending:
                idx = pending.popleft()
                if idx not in results:
                    item = items[idx]
                    yield env.work(ops(item))
                    commit(idx, fn(item))
            continue
        kind = msg[0]
        if kind == "ready":
            worker = msg[1]
            live.add(worker)
            yield from dispatch(worker)
        elif kind == "done":
            _, worker, idx, value = msg
            live.add(worker)
            if outstanding.get(idx) == worker:
                del outstanding[idx]
            commit(idx, value)
            yield from dispatch(worker)
        # unknown kinds (corrupt survivors) are ignored

    for worker in list(parked) + sorted(live - set(parked)):
        try:
            yield from chan.send(worker, ("stop",), tag=_TAG_JOB)
        except FaultError:
            continue
    return [results[i] for i in range(n_jobs)]


def ft_map_machine(
    items: Sequence[Any],
    fn: Callable[[Any], Any],
    *,
    nprocs: int = 8,
    topology: Topology | int | None = None,
    spec: MachineSpec = AP1000,
    faults: FaultSpec | None = None,
    cost_fn: Callable[[Any], float] | None = None,
    master: int = 0,
    checkpoint: CheckpointStore | None = None,
    max_restarts: int = 2,
    record_trace: bool = False,
) -> tuple[list[Any], list[RunResult]]:
    """Run a fault-tolerant ``map`` on a simulated machine, to completion.

    Executes :func:`ft_farm` under the given :class:`FaultSpec`.  If the
    run ends without a full result set (the master crashed), the farm is
    **restarted from the checkpoint** on a repaired machine — the crash
    schedule is cleared (the operator replaced the dead nodes) while
    message-level faults stay active — up to ``max_restarts`` times.

    Returns ``(results, runs)``: the index-aligned results and one
    :class:`RunResult` per attempt (so callers can report the makespan
    penalty the faults cost).
    """
    if checkpoint is None:
        checkpoint = CheckpointStore()
    n_jobs = len(items)
    fault_spec = faults
    runs: list[RunResult] = []
    attempts = max_restarts + 1
    for attempt in range(attempts):
        # Always install an injector (zero-rate when no faults requested):
        # the reliable protocol can leave benign duplicate frames behind,
        # which only the faults-enabled engine tolerates.
        injector = FaultInjector(fault_spec if fault_spec is not None
                                 else FaultSpec())
        machine = Machine(topology if topology is not None else nprocs,
                          spec=spec, record_trace=record_trace,
                          faults=injector)

        def program(env: ProcEnv) -> Gen:
            return (yield from ft_farm(env, items, fn, cost_fn=cost_fn,
                                       master=master,
                                       checkpoint=checkpoint))

        runs.append(machine.run(program))
        if len(checkpoint) >= n_jobs:
            break
        if fault_spec is not None and fault_spec.crash_at:
            # Repaired machine for the next attempt: crashes cleared.
            fault_spec = fault_spec.replace(crash_at={})
    if len(checkpoint) < n_jobs:
        raise FaultError(
            f"fault-tolerant map incomplete after {attempts} attempts: "
            f"{len(checkpoint)}/{n_jobs} jobs committed",
            kind="incomplete")
    return [checkpoint.result(i) for i in range(n_jobs)], runs
