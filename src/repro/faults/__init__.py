"""Deterministic fault injection and fault-tolerant execution.

The paper's machine model assumes a perfectly reliable AP1000-class
network.  This package relaxes that assumption without contradicting it:

* :mod:`repro.faults.models` — :class:`FaultSpec` / :class:`FaultInjector`,
  the seeded, purely hash-driven fault models the simulator consumes via
  ``Machine(..., faults=...)`` (drop, duplicate, delay, corrupt, slow
  links/nodes, crash-at-time),
* :mod:`repro.faults.runtime` — the crash-surviving farm
  (:func:`ft_farm` / :func:`ft_map_machine`) with work reassignment and
  host-side checkpoint/restart,
* :mod:`repro.faults.apps` — example apps on the resilience layer
  (:func:`ft_hyperquicksort_machine`),
* :mod:`repro.faults.chaos` — the ``python -m repro chaos`` sweep harness.

With faults disabled everything below degenerates exactly to the
fault-free machine: an all-zero :class:`FaultSpec` is bit-for-bit the
identity (tested against ``repro.machine._reference``).
"""

from repro.faults.models import Corrupted, FaultInjector, FaultSpec
from repro.faults.runtime import CheckpointStore, ft_farm, ft_map_machine
from repro.faults.apps import ft_hyperquicksort_machine
from repro.faults import apps, chaos, models, runtime

__all__ = [
    "Corrupted",
    "FaultInjector",
    "FaultSpec",
    "CheckpointStore",
    "ft_farm",
    "ft_map_machine",
    "ft_hyperquicksort_machine",
    "apps",
    "chaos",
    "models",
    "runtime",
]
