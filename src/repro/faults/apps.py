"""Example applications rebuilt on the resilience layer.

:func:`ft_hyperquicksort_machine` is hyperquicksort on a lossy machine —
but unlike the first generation of this module, it is no longer a hand
port.  The sorting rounds are the *compiled* §5 expression
(:func:`repro.apps.sort.hyperquicksort_expression`) executed through the
fault-tolerant plan interpreter
(:func:`repro.faults.plan_exec.execute_plan_ft`), and the bracketing
distribution/collection steps are the shared crash-aware collectives
(:func:`~repro.machine.collectives_ft.ft_scatter` /
:func:`~repro.machine.collectives_ft.ft_gather`).  The only app-specific
code left is the app itself: pre-sort the local block, run the
expression, concatenate.

The communication pattern this produces differs from the perfect-network
compiler's (linear reliable scatter/gather instead of binomial trees;
`ReliableChannel.exchange` for the symmetric partner swap, which services
the partner's data while awaiting its own ack), so the makespan carries a
measurable resilience penalty — but the computed values are identical.

Node *crashes* are out of scope here: a crashed sorter loses its data
block, which no messaging protocol can recover.  Crash tolerance belongs
to the job-level farm (:mod:`repro.faults.runtime`), where work — not
state — is what must survive.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FaultError
from repro.apps.sort import SortCostParams, hyperquicksort_expression, seq_quicksort
from repro.machine import AP1000, Hypercube, Machine, MachineSpec
from repro.machine.api import Comm
from repro.machine.collectives_ft import ft_gather, ft_scatter
from repro.machine.plan_exec import Grouped
from repro.machine.reliable import ReliableChannel
from repro.machine.simulator import RunResult
from repro.plan.lower import lower
from repro.runtime.chunking import chunk_indices
from repro.faults.models import FaultInjector, FaultSpec
from repro.faults.plan_exec import execute_plan_ft

__all__ = ["ft_hyperquicksort_machine"]


def ft_hyperquicksort_machine(
    values: Sequence[int] | np.ndarray,
    d: int,
    *,
    spec: MachineSpec = AP1000,
    params: SortCostParams = SortCostParams(),
    faults: FaultSpec | None = None,
    record_trace: bool = False,
    channel_timeout: float | None = None,
    max_retries: int = 8,
) -> tuple[np.ndarray, RunResult]:
    """Hyperquicksort on a lossy simulated hypercube; returns (sorted, run).

    Structure: reliable scatter, local sort, the compiled §5 expression's
    ``d`` pivot/split/exchange/merge rounds through the fault-tolerant
    plan interpreter, reliable gather.  With ``faults=None`` (or an
    all-zero spec) the result matches the plain version
    element-for-element; under message faults it still sorts correctly,
    and the :class:`RunResult` carries the retransmit/timeout/drop
    counters that quantify the cost.
    """
    values = np.asarray(values)
    p = 1 << d
    # Always install an injector (zero-rate if no faults requested): the
    # reliable protocol can leave benign duplicate frames in mailboxes even
    # on a healthy network (a retransmit raced a slow ack), which only the
    # faults-enabled engine tolerates.  A zero-rate injector's arithmetic
    # is bit-identical to the fault-free path.
    injector = FaultInjector(faults if faults is not None else FaultSpec())
    machine = Machine(Hypercube(d), spec=spec, record_trace=record_trace,
                      faults=injector)
    spans = chunk_indices(len(values), p)
    blocks = [values[lo:hi] for lo, hi in spans]
    plan = lower(hyperquicksort_expression(d), p)

    def program(env):
        comm = Comm.world(env)
        chan = ReliableChannel(env, timeout=channel_timeout,
                               max_retries=max_retries)
        # -- distribute: linear reliable scatter from p0
        local = np.asarray((yield from ft_scatter(
            chan, comm, blocks if comm.rank == 0 else None)))
        # -- local sort
        yield env.work(params.sort_ops(local.size))
        local = seq_quicksort(local)
        # -- the compiled sorting rounds, fault-tolerantly
        local = yield from execute_plan_ft(plan, env, comm, chan, local)
        assert not isinstance(local, Grouped)
        # -- linear reliable gather to p0
        if p > 1:
            try:
                parts = yield from ft_gather(chan, comm, local)
            except FaultError:
                # Two-generals tail: an eternally unacked final send means
                # the root already has our block and exited (its ack to us
                # was lost).  If the data itself were lost, the root would
                # still be blocked re-acking our retransmissions.
                return None
            if comm.rank != 0:
                return None
            yield env.work(len(values))  # copy-out cost
            return np.concatenate([np.asarray(b) for b in parts])
        return local

    result = machine.run(program)
    return np.asarray(result.values[0]), result
