"""Example applications rebuilt on the resilience layer.

:func:`ft_hyperquicksort_machine` is the hand-compiled hyperquicksort of
:mod:`repro.apps.sort` with every message moved onto the reliable
(ack/retransmit) channel, so the run completes — with a measurable
makespan penalty — while the fault injector drops, duplicates, delays or
corrupts messages.  The communication pattern changes with it:

* scatter/gather and the pivot broadcast become *linear* reliable
  transfers (root/leader serves each peer in turn) instead of binomial
  trees — a dropped tree edge would strand a whole subtree, while a
  linear pattern confines every loss to one acked edge;
* the partner exchange uses :meth:`ReliableChannel.exchange`, which
  services the partner's data while awaiting its own ack (a plain
  reliable send/recv pair deadlocks when both sides lose their acks).

Node *crashes* are out of scope here: a crashed sorter loses its data
block, which no messaging protocol can recover.  Crash tolerance belongs
to the job-level farm (:mod:`repro.faults.runtime`), where work — not
state — is what must survive.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FaultError
from repro.apps.sort import (SortCostParams, merge_sorted, midvalue,
                             seq_quicksort, split_by_pivot)
from repro.machine import AP1000, Hypercube, Machine, MachineSpec
from repro.machine.reliable import ReliableChannel
from repro.machine.simulator import RunResult
from repro.runtime.chunking import chunk_indices
from repro.faults.models import FaultInjector, FaultSpec

__all__ = ["ft_hyperquicksort_machine"]

_TAG_SCATTER = 11
_TAG_GATHER = 12
_TAG_PIVOT = 13
_TAG_EXCHANGE = 7


def ft_hyperquicksort_machine(
    values: Sequence[int] | np.ndarray,
    d: int,
    *,
    spec: MachineSpec = AP1000,
    params: SortCostParams = SortCostParams(),
    faults: FaultSpec | None = None,
    record_trace: bool = False,
    channel_timeout: float | None = None,
    max_retries: int = 8,
) -> tuple[np.ndarray, RunResult]:
    """Hyperquicksort on a lossy simulated hypercube; returns (sorted, run).

    Identical algorithmic structure to
    :func:`repro.apps.sort.hyperquicksort_machine` (scatter, local sort,
    ``d`` pivot/split/exchange/merge rounds, gather), with all traffic on
    a :class:`ReliableChannel`.  With ``faults=None`` (or an all-zero
    spec) the result matches the plain version element-for-element; under
    message faults it still sorts correctly, and the :class:`RunResult`
    carries the retransmit/timeout/drop counters that quantify the cost.
    """
    values = np.asarray(values)
    p = 1 << d
    # Always install an injector (zero-rate if no faults requested): the
    # reliable protocol can leave benign duplicate frames in mailboxes even
    # on a healthy network (a retransmit raced a slow ack), which only the
    # faults-enabled engine tolerates.  A zero-rate injector's arithmetic
    # is bit-identical to the fault-free path.
    injector = FaultInjector(faults if faults is not None else FaultSpec())
    machine = Machine(Hypercube(d), spec=spec, record_trace=record_trace,
                      faults=injector)
    spans = chunk_indices(len(values), p)

    def program(env):
        pid = env.pid
        chan = ReliableChannel(env, timeout=channel_timeout,
                               max_retries=max_retries)
        # -- distribute: linear reliable scatter from p0
        if p > 1:
            if pid == 0:
                local = np.asarray(values[spans[0][0]:spans[0][1]])
                for dst in range(1, p):
                    lo, hi = spans[dst]
                    yield from chan.send(dst, values[lo:hi],
                                         tag=_TAG_SCATTER)
            else:
                local = np.asarray((yield from chan.recv(
                    0, tag=_TAG_SCATTER)))
        else:
            local = values
        # -- local sort
        yield env.work(params.sort_ops(local.size))
        local = seq_quicksort(local)
        # -- d iterations over shrinking sub-cubes
        for it in range(d):
            dim = d - it
            sub = 1 << dim
            half = sub >> 1
            leader = (pid // sub) * sub
            # pivot: median on the sub-cube leader, relayed linearly
            if pid == leader:
                yield env.work(params.median_ops)
                pivot = midvalue(local)
                for member in range(leader + 1, leader + sub):
                    yield from chan.send(member, pivot, tag=_TAG_PIVOT)
            else:
                pivot = yield from chan.recv(leader, tag=_TAG_PIVOT)
            # split
            yield env.work(params.split_ops(local.size))
            low, high = split_by_pivot(pivot, local)
            keep, send_part = (low, high) if pid & half == 0 else (high, low)
            # partner exchange: symmetric, so it must service both
            # directions while awaiting its ack (see module docstring)
            partner = pid ^ half
            recv_part = np.asarray((yield from chan.exchange(
                partner, send_part, tag=_TAG_EXCHANGE)))
            # merge
            yield env.work(params.merge_ops(keep.size + recv_part.size))
            local = merge_sorted(keep, recv_part)
        # -- linear reliable gather to p0
        if p > 1:
            if pid == 0:
                parts = [local]
                for src in range(1, p):
                    parts.append(np.asarray((yield from chan.recv(
                        src, tag=_TAG_GATHER))))
                yield env.work(len(values))  # copy-out cost
                return np.concatenate(parts)
            try:
                yield from chan.send(0, local, tag=_TAG_GATHER)
            except FaultError:
                # Two-generals tail: an eternally unacked final send means
                # the root already has our block and exited (its ack to us
                # was lost).  If the data itself were lost, the root would
                # still be blocked re-acking our retransmissions.
                pass
            return None
        return local

    result = machine.run(program)
    return np.asarray(result.values[0]), result
