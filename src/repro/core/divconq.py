"""The divide-and-conquer skeleton.

The paper notes that "more sophisticated combining forms such as
divide-and-conquer can be defined and implemented ... and preserved as
reusable templates"; ``dc`` is that template, the classic fourth member of
the algorithmic-skeleton canon (Cole 1989):

    dc(trivial, solve, divide, combine)(problem)
      = solve(problem)                                  if trivial(problem)
      = combine(map (dc ...) (divide(problem)))         otherwise

Parallelisation strategy (grain control — the paper's "full control over
granularity"): the division tree is expanded in the calling thread down to
``fork_levels``; the resulting frontier of independent sub-problems is
solved in **one** executor ``map`` (no nested pool usage, so bounded
thread pools cannot starve); results are combined back up the recorded
tree.  The result is identical to the fully sequential recursion.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence, TypeVar

from repro.errors import SkeletonError
from repro.runtime.executor import Executor, SequentialExecutor, get_executor

__all__ = ["divide_and_conquer"]

_P = TypeVar("_P")
_S = TypeVar("_S")


@dataclasses.dataclass
class _TreeNode:
    """One expanded division: either a frontier leaf or an inner node."""

    problem: Any
    children: "list[_TreeNode] | None" = None  # None = frontier leaf
    leaf_index: int = -1


def divide_and_conquer(
    trivial: Callable[[_P], bool],
    solve: Callable[[_P], _S],
    divide: Callable[[_P], Sequence[_P]],
    combine: Callable[[Sequence[_S]], _S],
    problem: _P,
    *,
    executor: Executor | str | None = None,
    fork_levels: int = 3,
    max_depth: int | None = 10_000,
) -> _S:
    """Solve ``problem`` by recursive division (see module docstring).

    ``fork_levels`` controls how deep the tree is expanded before work is
    farmed out (``2**fork_levels``-ish frontier tasks for binary
    division); ``max_depth`` guards against a ``divide`` that never
    reaches a trivial case.
    """
    if fork_levels < 0:
        raise SkeletonError(f"fork_levels must be non-negative, got {fork_levels}")
    ex = get_executor(executor)

    def sequential(prob: _P, depth: int) -> _S:
        if trivial(prob):
            return solve(prob)
        if max_depth is not None and depth >= max_depth:
            raise SkeletonError(
                f"divide_and_conquer exceeded max_depth={max_depth} "
                f"(divide never reaches a trivial problem?)")
        subs = list(divide(prob))
        if not subs:
            raise SkeletonError("divide produced no sub-problems")
        return combine([sequential(s, depth + 1) for s in subs])

    if isinstance(ex, SequentialExecutor):
        return sequential(problem, 0)

    # 1. expand the division tree down to fork_levels in this thread
    leaves: list[_P] = []

    def expand(prob: _P, depth: int) -> _TreeNode:
        if trivial(prob) or depth >= fork_levels:
            node = _TreeNode(problem=prob, leaf_index=len(leaves))
            leaves.append(prob)
            return node
        if max_depth is not None and depth >= max_depth:
            raise SkeletonError(
                f"divide_and_conquer exceeded max_depth={max_depth}")
        subs = list(divide(prob))
        if not subs:
            raise SkeletonError("divide produced no sub-problems")
        return _TreeNode(problem=prob,
                         children=[expand(s, depth + 1) for s in subs])

    root = expand(problem, 0)
    # 2. one flat executor map over the frontier (sequential below it)
    solved = ex.map(lambda p: sequential(p, fork_levels), leaves)

    # 3. combine back up the recorded tree
    def fold_up(node: _TreeNode) -> _S:
        if node.children is None:
            return solved[node.leaf_index]
        return combine([fold_up(c) for c in node.children])

    return fold_up(root)
