"""Computational skeletons (§2.3): abstracting parallel control flow.

* :func:`farm` — the simplest form of data parallelism: apply a worker
  function (closed over a common environment) to every job.
* :func:`spmd` — staged SPMD computation: a list of (global-op, local-op)
  pairs; local ops are farmed across the configuration, global ops
  synchronise and communicate.  Function composition between stages models
  barrier synchronisation.
* :func:`iter_until` / :func:`iter_for` — the iteration skeletons; the
  latter is defined *via* the former exactly as in the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence

from repro.core.elementary import imap, parmap
from repro.core.pararray import ParArray
from repro.errors import SkeletonError
from repro.runtime.executor import Executor

__all__ = ["farm", "spmd", "SpmdStage", "iter_until", "iter_for"]


def farm(f: Callable[[Any, Any], Any], env: Any, pa: ParArray, *,
         executor: Executor | str | None = None,
         retries: int = 0) -> ParArray:
    """Farm jobs out to processors: ``farm f env = map (f env)``.

    ``env`` is data common to all jobs (broadcast once); each component of
    ``pa`` is an independent job evaluated as ``f(env, job)``.

    ``retries`` adds host-level transient-fault tolerance: a job whose
    evaluation raises is retried up to ``retries`` more times before the
    exception propagates (jobs are independent, so re-evaluation is safe).
    This covers flaky *host* execution only; for simulated machine faults
    (crashed processors, lost messages) use the machine-level farm in
    :mod:`repro.faults.runtime`, which reassigns work and checkpoints.
    """
    if retries < 0:
        raise SkeletonError(f"retries must be non-negative, got {retries}")

    def attempt(x: Any) -> Any:
        for remaining in range(retries, -1, -1):
            try:
                return f(env, x)
            except Exception:
                if remaining == 0:
                    raise

    return parmap(attempt, pa, executor=executor)


@dataclasses.dataclass(frozen=True)
class SpmdStage:
    """One SPMD stage: a global parallel operation and a farmed local one.

    ``local`` is applied with ``imap`` (it receives ``(index, value)``) —
    a flat base-language fragment computed independently per processor.
    ``global_`` acts on the whole configuration — a parallel operation that
    requires synchronisation/communication (a communication skeleton, a
    redistribution, …).  Either may be ``None`` for identity.
    """

    global_: Callable[[ParArray], ParArray] | None = None
    local: Callable[[Any, Any], Any] | None = None

    @classmethod
    def of(cls, stage: "SpmdStage | tuple | Callable | None") -> "SpmdStage":
        """Coerce ``(gf, lf)`` tuples (paper notation) to a stage."""
        if isinstance(stage, SpmdStage):
            return stage
        if isinstance(stage, tuple) and len(stage) == 2:
            return cls(global_=stage[0], local=stage[1])
        raise SkeletonError(
            f"SPMD stage must be SpmdStage or (global, local) pair, got {stage!r}")


def spmd(stages: Sequence["SpmdStage | tuple"], *,
         executor: Executor | str | None = None) -> Callable[[ParArray], ParArray]:
    """Compose SPMD stages into one configuration transformer.

    ``spmd([]) = id``; ``spmd([(gf, lf)] + fs) = spmd(fs) . gf . imap(lf)``
    — each stage farms its local operation across the configuration, then
    runs its global operation; the composition boundary is the barrier.
    """
    parsed = [SpmdStage.of(s) for s in stages]

    def run(conf: ParArray) -> ParArray:
        if not isinstance(conf, ParArray):
            raise SkeletonError(f"SPMD expects a ParArray, got {type(conf).__name__}")
        for stage in parsed:
            if stage.local is not None:
                conf = imap(stage.local, conf, executor=executor)
            if stage.global_ is not None:
                conf = stage.global_(conf)
                if not isinstance(conf, ParArray):
                    raise SkeletonError(
                        "SPMD global operation must return a ParArray, "
                        f"got {type(conf).__name__}")
        return conf

    return run


def iter_until(
    iter_solve: Callable[[Any], Any],
    final_solve: Callable[[Any], Any],
    cond: Callable[[Any], bool],
    x: Any,
    *,
    max_iterations: int | None = None,
) -> Any:
    """Iterate ``iter_solve`` until ``cond`` holds, then apply ``final_solve``.

    The condition is checked *before* each iteration, exactly as the paper
    defines ``iterUntil``.  ``max_iterations`` (an extension) guards
    against non-terminating conditions; ``None`` means unbounded.
    """
    steps = 0
    while not cond(x):
        if max_iterations is not None and steps >= max_iterations:
            raise SkeletonError(
                f"iter_until exceeded max_iterations={max_iterations}")
        x = iter_solve(x)
        steps += 1
    return final_solve(x)


def iter_for(terminator: int, iter_solve: Callable[[int, Any], Any], x: Any) -> Any:
    """Counted iteration: apply ``iter_solve(i, x)`` for ``i = 0 .. n-1``.

    Defined via :func:`iter_until` over an ``(x, i)`` pair, mirroring the
    paper's ``iterFor = fst (iterUntil iSolve id con (x, 0))``.
    """
    if not isinstance(terminator, int) or terminator < 0:
        raise SkeletonError(f"terminator must be a non-negative int, got {terminator!r}")

    def i_solve(state: tuple[Any, int]) -> tuple[Any, int]:
        xv, i = state
        return (iter_solve(i, xv), i + 1)

    def con(state: tuple[Any, int]) -> bool:
        return state[1] >= terminator

    final_state = iter_until(i_solve, lambda s: s, con, (x, 0))
    return final_state[0]
