"""SCL core: the paper's skeleton library over distributed parallel arrays.

Three skeleton families, matching §2 of the paper:

* **configuration skeletons** (:mod:`repro.core.config`) — ``partition``,
  ``align``, ``distribution``, ``redistribution``, ``gather``, ``split``,
  ``combine``: how data is divided, co-located and (re)distributed,
* **elementary skeletons** (:mod:`repro.core.elementary`,
  :mod:`repro.core.communication`) — ``parmap``/``imap``/``fold``/``scan``
  plus the bulk data-movement operators ``rotate``, ``rotate_row``,
  ``rotate_col``, ``brdcast``, ``apply_brdcast``, ``send``, ``fetch``,
* **computational skeletons** (:mod:`repro.core.computational`) — ``farm``,
  ``spmd``, ``iter_until``, ``iter_for``: parallel control flow.

Naming note: the paper's ``map`` is exported as :func:`parmap` (shadowing
the Python builtin would be hostile); every other name follows the paper
(snake_cased).
"""

from repro.core.pararray import ParArray, Index
from repro.core.partition import (
    PartitionPattern,
    Block,
    BlockCyclic,
    Cyclic,
    RowBlock,
    ColBlock,
    RowColBlock,
    RowCyclic,
    ColCyclic,
)
from repro.core.config import (
    partition,
    align,
    unalign,
    distribution,
    redistribution,
    gather,
    split,
    combine,
)
from repro.core.elementary import parmap, imap, fold, scan, fold_map, scan_seq
from repro.core.communication import (
    rotate,
    rotate_row,
    rotate_col,
    brdcast,
    apply_brdcast,
    send,
    fetch,
)
from repro.core.computational import farm, spmd, SpmdStage, iter_until, iter_for
from repro.core.divconq import divide_and_conquer

__all__ = [
    "ParArray",
    "Index",
    "PartitionPattern",
    "Block",
    "BlockCyclic",
    "Cyclic",
    "RowBlock",
    "ColBlock",
    "RowColBlock",
    "RowCyclic",
    "ColCyclic",
    "partition",
    "align",
    "unalign",
    "distribution",
    "redistribution",
    "gather",
    "split",
    "combine",
    "parmap",
    "imap",
    "fold",
    "scan",
    "fold_map",
    "scan_seq",
    "rotate",
    "rotate_row",
    "rotate_col",
    "brdcast",
    "apply_brdcast",
    "send",
    "fetch",
    "farm",
    "spmd",
    "SpmdStage",
    "iter_until",
    "iter_for",
    "divide_and_conquer",
]
