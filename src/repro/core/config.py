"""Configuration skeletons (§2.1): partition, align, distribution, …

A *configuration* models the logical division and placement of data: a
sequential array is ``partition``-ed into distributed components, components
of several arrays are ``align``-ed into co-located tuples, and the resulting
configuration can later be ``redistribution``-ed with bulk data-movement
operators or ``gather``-ed back into a sequential array (Fig. 1).

``split`` and ``combine`` manage *nested* parallelism: ``split`` divides a
ParArray into a ParArray of ParArrays — processor groups, the paper's MPI
group analogue — and ``combine`` flattens a nested ParArray back.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.pararray import ParArray
from repro.core.partition import Block, PartitionPattern
from repro.errors import ConfigurationError
from repro.util.functional import identity

__all__ = [
    "partition",
    "align",
    "unalign",
    "distribution",
    "redistribution",
    "gather",
    "split",
    "combine",
]


def partition(pattern: PartitionPattern, seq: Any) -> ParArray:
    """Divide a sequential array into a ParArray of sequential sub-arrays.

    The result remembers ``pattern`` (in ``.dist``) so :func:`gather` can
    invert the division exactly.
    """
    if not isinstance(pattern, PartitionPattern):
        raise ConfigurationError(
            f"pattern must be a PartitionPattern, got {type(pattern).__name__}")
    return pattern.split(seq)


def align(*arrays: ParArray) -> ParArray:
    """Pair corresponding components of several ParArrays into tuples.

    ``align(A, B)[i] == (A[i], B[i])``: the components of one tuple are
    regarded as allocated to the same processor.  All arguments must have
    the same processor-grid shape.
    """
    if not arrays:
        raise ConfigurationError("align requires at least one ParArray")
    first = arrays[0]
    for a in arrays:
        if not isinstance(a, ParArray):
            raise ConfigurationError(
                f"align arguments must be ParArrays, got {type(a).__name__}")
        if a.shape != first.shape:
            raise ConfigurationError(
                f"cannot align shapes {first.shape} and {a.shape}")
    dists = tuple(a.dist for a in arrays)
    return first.with_items(
        lambda idx, _v: tuple(a[idx] for a in arrays), dist=dists)


def unalign(conf: ParArray, j: int | None = None) -> ParArray | tuple[ParArray, ...]:
    """Extract distributed array(s) from a configuration of tuples.

    With ``j`` given, returns the j-th distributed array (the paper's
    "pattern match to extract a particular distributed array from the
    configuration"); otherwise returns the tuple of all of them.
    """
    widths = {len(t) for t in conf if isinstance(t, tuple)}
    if len(widths) != 1 or any(not isinstance(t, tuple) for t in conf):
        raise ConfigurationError("unalign expects a configuration of equal-width tuples")
    (width,) = widths
    dists = conf.dist if isinstance(conf.dist, tuple) and len(conf.dist) == width \
        else (None,) * width
    if j is not None:
        if not (0 <= j < width):
            raise ConfigurationError(f"component {j} out of range for width {width}")
        return conf.with_items(lambda _i, t: t[j], dist=dists[j])
    return tuple(conf.with_items(lambda _i, t: t[k], dist=dists[k])
                 for k in range(width))


def distribution(
    strategies: Sequence[tuple[Callable[[ParArray], ParArray] | None, PartitionPattern]],
    arrays: Sequence[Any],
) -> ParArray:
    """The paper's ``distribution`` skeleton: partition + move + align.

    ``strategies[j] = (move, pattern)`` partitions ``arrays[j]`` with
    ``pattern`` and then applies the bulk data-movement operator ``move``
    (``None`` for no initial rearrangement).  The partitioned-and-moved
    arrays are aligned into one configuration::

        distribution [(p, f), (q, g)] [A, B]
            == align (p (partition f A)) (q (partition g B))
    """
    if len(strategies) != len(arrays):
        raise ConfigurationError(
            f"{len(strategies)} strategies for {len(arrays)} arrays")
    if not strategies:
        raise ConfigurationError("distribution requires at least one array")
    parts = []
    for (move, pattern), arr in zip(strategies, arrays):
        pa = partition(pattern, arr)
        move = identity if move is None else move
        moved = move(pa)
        if not isinstance(moved, ParArray):
            raise ConfigurationError(
                "bulk data-movement operator must return a ParArray, "
                f"got {type(moved).__name__}")
        parts.append(moved)
    if len(parts) == 1:
        return parts[0]
    return align(*parts)


def redistribution(
    fns: Sequence[Callable[[ParArray], ParArray] | None],
    conf: ParArray,
) -> ParArray:
    """Apply one bulk data-movement operator per distributed array.

    ``redistribution [f1..fn] (DA1, .., DAn) = (f1 DA1, .., fn DAn)``:
    dynamic redistribution is just bulk movement applied componentwise to
    the configuration.  ``None`` entries leave an array untouched.  A plain
    (non-tuple) ParArray is treated as a width-1 configuration.
    """
    is_tuple_conf = all(isinstance(t, tuple) for t in conf) and conf.size > 0
    if not is_tuple_conf:
        if len(fns) != 1:
            raise ConfigurationError(
                f"{len(fns)} movement operators for a width-1 configuration")
        fn = fns[0] or identity
        return fn(conf)
    das = unalign(conf)
    if len(fns) != len(das):
        raise ConfigurationError(
            f"{len(fns)} movement operators for width-{len(das)} configuration")
    moved = [(fn or identity)(da) for fn, da in zip(fns, das)]
    return align(*moved)


def gather(pa: ParArray, pattern: PartitionPattern | None = None) -> Any:
    """Collect a distributed array back into one sequential array.

    Inverts the partition recorded on ``pa.dist`` (or an explicit
    ``pattern``).  A ParArray produced by other means is reassembled with
    block semantics (components concatenated in index order).
    """
    pattern = pattern if pattern is not None else pa.dist
    if isinstance(pattern, PartitionPattern):
        return pattern.unsplit(pa)
    if pa.ndim != 1:
        raise ConfigurationError(
            f"gather of a {pa.ndim}-D ParArray requires its partition pattern")
    return Block(pa.size).unsplit(ParArray(pa.to_list(), dist=None))


def split(pattern: PartitionPattern, pa: ParArray) -> ParArray:
    """Divide a configuration into sub-configurations (nested ParArray).

    ``split`` operates at the *processor* level: the components of ``pa``
    are grouped by ``pattern`` into a ParArray of ParArrays.  Each inner
    ParArray is a processor group on which nested-parallel operations can
    run (hyperquicksort's sub-hypercubes).
    """
    if pa.ndim != 1:
        raise ConfigurationError(f"split supports 1-D ParArrays, got shape {pa.shape}")
    if pattern.nparts > pa.size:
        raise ConfigurationError(
            f"cannot split {pa.size} processors into {pattern.nparts} groups: "
            f"a processor group may not be empty")
    groups = pattern.split(pa.to_list())
    return groups.with_items(
        lambda _i, members: ParArray(list(members)), dist=pattern)


def combine(nested: ParArray) -> ParArray:
    """Flatten a nested ParArray (inverse of :func:`split`).

    Uses the partition pattern recorded by :func:`split` to put group
    members back at their original processor positions; a nested array with
    no recorded pattern is flattened by concatenation in group order.
    """
    for group in nested:
        if not isinstance(group, ParArray):
            raise ConfigurationError(
                f"combine expects ParArray components, got {type(group).__name__}")
    lists = nested.with_items(lambda _i, g: g.to_list(), dist=nested.dist)
    if isinstance(nested.dist, PartitionPattern):
        flat = nested.dist.unsplit(lists)
    else:
        flat = []
        for members in lists:
            flat.extend(members)
    return ParArray(list(flat))
