"""Elementary skeletons (§2.2): the data-parallel operators.

``parmap`` (the paper's ``map``), ``imap``, ``fold`` and ``scan`` abstract
the essential data-parallel computation patterns over :class:`ParArray`.
``fold`` and ``scan`` demand an *associative* operator ("otherwise the
result is undefined"); both are implemented with order-preserving balanced
combination so any associative — not necessarily commutative — operator is
safe, and so that the work genuinely parallelises over an executor.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TypeVar

from repro.core.pararray import ParArray
from repro.errors import SkeletonError
from repro.runtime.executor import Executor, get_executor

__all__ = ["parmap", "imap", "fold", "scan", "fold_map", "scan_seq"]

_T = TypeVar("_T")
_U = TypeVar("_U")


def parmap(f: Callable[[Any], Any], pa: ParArray, *,
           executor: Executor | str | None = None) -> ParArray:
    """Apply ``f`` to every component: ``parmap f <x0..xn> = <f x0 .. f xn>``.

    This is the paper's ``map`` — the broadcast of a parallel task to all
    elements of an array.  Work items are independent, so any executor may
    evaluate them concurrently; result order always follows index order.
    """
    _check_pa(pa, "parmap")
    ex = get_executor(executor)
    indices = list(pa.indices())
    values = ex.map(f, (pa[idx] for idx in indices))
    return ParArray(dict(zip(indices, values)), pa.shape, dist=pa.dist)


def imap(f: Callable[[Any, Any], Any], pa: ParArray, *,
         executor: Executor | str | None = None) -> ParArray:
    """Index-aware map: ``imap f <x0..xn> = <f 0 x0 .. f n xn>``.

    1-D arrays pass the index as an ``int``; grids pass the index tuple.
    """
    _check_pa(pa, "imap")
    ex = get_executor(executor)
    indices = list(pa.indices())
    args = [((idx[0] if len(idx) == 1 else idx), pa[idx]) for idx in indices]
    values = ex.starmap(f, args)
    return ParArray(dict(zip(indices, values)), pa.shape, dist=pa.dist)


def fold(op: Callable[[Any, Any], Any], pa: ParArray, *,
         executor: Executor | str | None = None) -> Any:
    """Tree reduction: ``fold (+) <x0..xn> = x0 + x1 + ... + xn``.

    ``op`` must be associative.  Combination happens pairwise in index
    order (a balanced binary tree), so non-commutative associative
    operators (e.g. matrix product, string concatenation) give the same
    result as a left-to-right reduction — in ``O(log n)`` parallel steps.
    """
    _check_pa(pa, "fold")
    values = pa.to_list()
    if not values:
        raise SkeletonError("fold of an empty ParArray is undefined")
    ex = get_executor(executor)
    while len(values) > 1:
        pairs = [(values[i], values[i + 1]) for i in range(0, len(values) - 1, 2)]
        reduced = ex.starmap(op, pairs)
        if len(values) % 2:
            reduced.append(values[-1])
        values = reduced
    return values[0]


def scan(op: Callable[[Any, Any], Any], pa: ParArray, *,
         executor: Executor | str | None = None,
         blocks: int | None = None) -> ParArray:
    """Inclusive prefix reduction: ``scan (+) <x0,x1,..> = <x0, x0+x1, ..>``.

    Parallel blocked algorithm: components are cut into blocks, each block
    is scanned locally (concurrently), block totals are prefix-combined,
    and each block is offset by the preceding blocks' total.  Requires only
    associativity; results match :func:`scan_seq` exactly.
    """
    _check_pa(pa, "scan")
    if pa.ndim != 1:
        raise SkeletonError(f"scan requires a 1-D ParArray, got shape {pa.shape}")
    values = pa.to_list()
    if not values:
        raise SkeletonError("scan of an empty ParArray is undefined")
    ex = get_executor(executor)
    nblocks = blocks if blocks is not None else min(len(values), 8)
    if nblocks <= 1 or len(values) == 1:
        return ParArray(scan_seq(op, values), dist=pa.dist)

    from repro.runtime.chunking import chunk_evenly

    chunks = [c for c in chunk_evenly(values, nblocks) if c]
    local = ex.map(lambda c: scan_seq(op, list(c)), chunks)
    offsets: list[Any] = [None]
    acc = local[0][-1]
    for blk in local[1:]:
        offsets.append(acc)
        acc = op(acc, blk[-1])
    shifted = ex.starmap(
        lambda blk, off: blk if off is None else [op(off, v) for v in blk],
        zip(local, offsets),
    )
    out: list[Any] = []
    for blk in shifted:
        out.extend(blk)
    return ParArray(out, dist=pa.dist)


def scan_seq(op: Callable[[Any, Any], Any], xs: Sequence[Any]) -> list[Any]:
    """Reference sequential inclusive scan over a plain sequence."""
    if not xs:
        return []
    out = [xs[0]]
    for x in xs[1:]:
        out.append(op(out[-1], x))
    return out


def fold_map(op: Callable[[Any, Any], Any], g: Callable[[Any], Any],
             pa: ParArray, *,
             executor: Executor | str | None = None) -> Any:
    """``fold op . parmap g`` in one call — the parallel side of §4's
    map-distribution law (``foldr (op . g) z`` rewritten to expose
    parallelism)."""
    return fold(op, parmap(g, pa, executor=executor), executor=executor)


def _check_pa(pa: Any, who: str) -> None:
    if not isinstance(pa, ParArray):
        raise SkeletonError(f"{who} expects a ParArray, got {type(pa).__name__}")
