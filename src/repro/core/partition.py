"""Partition patterns — the ``Partition_pattern`` functions of §2.1.

A pattern knows three things:

* :meth:`~PartitionPattern.split` — divide a sequential array (``SeqArray``:
  a NumPy array or Python sequence) into a :class:`ParArray` of sequential
  sub-arrays,
* :meth:`~PartitionPattern.unsplit` — the exact inverse (used by ``gather``),
* :meth:`~PartitionPattern.index_map` — the paper's
  ``index_s → (index_p, index_s)`` mapping from a global element index to
  (owning processor, local index).

Provided patterns mirror the paper's built-ins: ``Block``/``Cyclic`` for
vectors and ``RowBlock``, ``ColBlock``, ``RowColBlock``, ``RowCyclic``,
``ColCyclic`` for two-dimensional arrays (which follow HPF's distribution
directives, as Fig. 1 notes).  Uneven divisions are supported: the first
``n mod p`` parts receive one extra row/column/element.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.core.pararray import Index, ParArray, normalize_index
from repro.errors import ConfigurationError
from repro.runtime.chunking import chunk_indices
from repro.util.validation import require_positive

__all__ = [
    "PartitionPattern",
    "Block",
    "Cyclic",
    "RowBlock",
    "ColBlock",
    "RowColBlock",
    "RowCyclic",
    "ColCyclic",
]


def _length(seq: Any) -> int:
    try:
        return len(seq)
    except TypeError:
        raise ConfigurationError(f"cannot partition object of type {type(seq).__name__}")


def _as_matrix(seq: Any, who: str) -> np.ndarray:
    arr = np.asarray(seq)
    if arr.ndim != 2:
        raise ConfigurationError(f"{who} requires a 2-D array, got {arr.ndim}-D")
    return arr


class PartitionPattern(abc.ABC):
    """A reversible strategy for dividing sequential data across processors."""

    #: Processor-grid shape this pattern produces.
    shape: tuple[int, ...]

    @property
    def nparts(self) -> int:
        """Total number of parts produced."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @abc.abstractmethod
    def split(self, seq: Any) -> ParArray:
        """Divide ``seq`` into a ParArray of sequential sub-arrays."""

    @abc.abstractmethod
    def unsplit(self, pa: ParArray) -> Any:
        """Reassemble what :meth:`split` divided (exact inverse)."""

    @abc.abstractmethod
    def index_map(self, seq_index: Index, seq_shape: tuple[int, ...]) -> tuple[
        tuple[int, ...], tuple[int, ...]]:
        """Map a global element index to ``(processor index, local index)``.

        ``seq_shape`` is the shape of the sequential array being
        partitioned (needed because block extents depend on it).
        """

    def _check_shape(self, pa: ParArray, who: str) -> None:
        if pa.shape != self.shape:
            raise ConfigurationError(
                f"{who}: ParArray shape {pa.shape} does not match pattern shape {self.shape}")

    def __repr__(self) -> str:
        args = ", ".join(str(d) for d in self.shape)
        return f"{type(self).__name__}({args})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.shape == other.shape

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.shape))


def _block_owner(i: int, n: int, p: int) -> tuple[int, int]:
    """(part, offset) of global index ``i`` under even-ish block division."""
    base, extra = divmod(n, p)
    boundary = extra * (base + 1)
    if i < boundary:
        return divmod(i, base + 1)
    if base == 0:
        raise ConfigurationError(f"index {i} out of range for n={n}")
    part, off = divmod(i - boundary, base)
    return extra + part, off


class Block(PartitionPattern):
    """Contiguous 1-D blocks: part ``k`` holds elements ``[n*k/p, n*(k+1)/p)``."""

    def __init__(self, p: int):
        require_positive(p, "p", ConfigurationError)
        self.p = p
        self.shape = (p,)

    def split(self, seq: Any) -> ParArray:
        n = _length(seq)
        parts = [seq[lo:hi] for lo, hi in chunk_indices(n, self.p)]
        return ParArray(parts, dist=self)

    def unsplit(self, pa: ParArray) -> Any:
        self._check_shape(pa, "Block.unsplit")
        parts = pa.to_list()
        if any(isinstance(part, np.ndarray) for part in parts):
            return np.concatenate([np.asarray(part) for part in parts])
        out: list[Any] = []
        for part in parts:
            out.extend(part)
        return out

    def index_map(self, seq_index: Index, seq_shape: tuple[int, ...]):
        (i,) = normalize_index(seq_index)
        (n,) = seq_shape
        if not (0 <= i < n):
            raise ConfigurationError(f"index {i} out of range for length {n}")
        part, off = _block_owner(i, n, self.p)
        return (part,), (off,)


class Cyclic(PartitionPattern):
    """Round-robin 1-D distribution: element ``i`` goes to part ``i mod p``."""

    def __init__(self, p: int):
        require_positive(p, "p", ConfigurationError)
        self.p = p
        self.shape = (p,)

    def split(self, seq: Any) -> ParArray:
        return ParArray([seq[k:: self.p] for k in range(self.p)], dist=self)

    def unsplit(self, pa: ParArray) -> Any:
        self._check_shape(pa, "Cyclic.unsplit")
        parts = [list(part) for part in pa]
        n = sum(len(part) for part in parts)
        out: list[Any] = [None] * n
        for k, part in enumerate(parts):
            for j, v in enumerate(part):
                out[k + j * self.p] = v
        if any(isinstance(part, np.ndarray) for part in pa):
            return np.array(out)
        return out

    def index_map(self, seq_index: Index, seq_shape: tuple[int, ...]):
        (i,) = normalize_index(seq_index)
        (n,) = seq_shape
        if not (0 <= i < n):
            raise ConfigurationError(f"index {i} out of range for length {n}")
        return (i % self.p,), (i // self.p,)


class BlockCyclic(PartitionPattern):
    """HPF's general 1-D distribution: blocks of ``b`` dealt round-robin.

    Element ``i`` lives in block ``i // b``; block ``j`` goes to part
    ``j mod p``.  ``BlockCyclic(b=1, p)`` degenerates to :class:`Cyclic`;
    ``b >= ceil(n/p)`` degenerates to :class:`Block` — the pattern HPF's
    ``DISTRIBUTE (CYCLIC(b))`` directive generalises both with.
    """

    def __init__(self, b: int, p: int):
        require_positive(b, "b", ConfigurationError)
        require_positive(p, "p", ConfigurationError)
        self.b = b
        self.p = p
        self.shape = (p,)

    def split(self, seq: Any) -> ParArray:
        n = _length(seq)
        parts: list[Any] = []
        is_np = isinstance(seq, np.ndarray)
        for k in range(self.p):
            pieces = [seq[j * self.b: (j + 1) * self.b]
                      for j in range((n + self.b - 1) // self.b)
                      if j % self.p == k]
            if is_np:
                parts.append(np.concatenate(pieces) if pieces
                             else seq[0:0])
            else:
                flat: list[Any] = []
                for piece in pieces:
                    flat.extend(piece)
                parts.append(flat)
        return ParArray(parts, dist=self)

    def unsplit(self, pa: ParArray) -> Any:
        self._check_shape(pa, "BlockCyclic.unsplit")
        parts = [list(part) for part in pa]
        n = sum(len(part) for part in parts)
        out: list[Any] = [None] * n
        offsets = [0] * self.p
        nblocks = (n + self.b - 1) // self.b
        for j in range(nblocks):
            k = j % self.p
            size = min(self.b, n - j * self.b)
            start = j * self.b
            for t in range(size):
                out[start + t] = parts[k][offsets[k] + t]
            offsets[k] += size
        if any(isinstance(part, np.ndarray) for part in pa):
            return np.array(out)
        return out

    def index_map(self, seq_index: Index, seq_shape: tuple[int, ...]):
        (i,) = normalize_index(seq_index)
        (n,) = seq_shape
        if not (0 <= i < n):
            raise ConfigurationError(f"index {i} out of range for length {n}")
        block = i // self.b
        part = block % self.p
        # every block before `block` is full (only the globally last block
        # can be short), so the local offset is exact:
        local = (block // self.p) * self.b + (i % self.b)
        return (part,), (local,)

    def __repr__(self) -> str:
        return f"BlockCyclic(b={self.b}, p={self.p})"

    def __eq__(self, other: object) -> bool:
        return (type(self) is type(other)
                and (self.b, self.p) == (other.b, other.p))  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash(("BlockCyclic", self.b, self.p))


class RowBlock(PartitionPattern):
    """Contiguous blocks of rows of a 2-D array (the paper's ``row_block``)."""

    def __init__(self, p: int):
        require_positive(p, "p", ConfigurationError)
        self.p = p
        self.shape = (p,)

    def split(self, seq: Any) -> ParArray:
        arr = _as_matrix(seq, "RowBlock")
        return ParArray(
            [arr[lo:hi, :] for lo, hi in chunk_indices(arr.shape[0], self.p)],
            dist=self,
        )

    def unsplit(self, pa: ParArray) -> Any:
        self._check_shape(pa, "RowBlock.unsplit")
        return np.concatenate([np.asarray(part) for part in pa], axis=0)

    def index_map(self, seq_index: Index, seq_shape: tuple[int, ...]):
        i, j = normalize_index(seq_index)
        rows, _cols = seq_shape
        part, off = _block_owner(i, rows, self.p)
        return (part,), (off, j)


class ColBlock(PartitionPattern):
    """Contiguous blocks of columns of a 2-D array (``col_block``)."""

    def __init__(self, p: int):
        require_positive(p, "p", ConfigurationError)
        self.p = p
        self.shape = (p,)

    def split(self, seq: Any) -> ParArray:
        arr = _as_matrix(seq, "ColBlock")
        return ParArray(
            [arr[:, lo:hi] for lo, hi in chunk_indices(arr.shape[1], self.p)],
            dist=self,
        )

    def unsplit(self, pa: ParArray) -> Any:
        self._check_shape(pa, "ColBlock.unsplit")
        return np.concatenate([np.asarray(part) for part in pa], axis=1)

    def index_map(self, seq_index: Index, seq_shape: tuple[int, ...]):
        i, j = normalize_index(seq_index)
        _rows, cols = seq_shape
        part, off = _block_owner(j, cols, self.p)
        return (part,), (i, off)


class RowColBlock(PartitionPattern):
    """2-D block decomposition onto a ``pr x pc`` processor grid."""

    def __init__(self, pr: int, pc: int):
        require_positive(pr, "pr", ConfigurationError)
        require_positive(pc, "pc", ConfigurationError)
        self.pr = pr
        self.pc = pc
        self.shape = (pr, pc)

    def split(self, seq: Any) -> ParArray:
        arr = _as_matrix(seq, "RowColBlock")
        rspans = chunk_indices(arr.shape[0], self.pr)
        cspans = chunk_indices(arr.shape[1], self.pc)
        data = {
            (i, j): arr[rlo:rhi, clo:chi]
            for i, (rlo, rhi) in enumerate(rspans)
            for j, (clo, chi) in enumerate(cspans)
        }
        return ParArray(data, self.shape, dist=self)

    def unsplit(self, pa: ParArray) -> Any:
        self._check_shape(pa, "RowColBlock.unsplit")
        rows = [
            np.concatenate([np.asarray(pa[(i, j)]) for j in range(self.pc)], axis=1)
            for i in range(self.pr)
        ]
        return np.concatenate(rows, axis=0)

    def index_map(self, seq_index: Index, seq_shape: tuple[int, ...]):
        i, j = normalize_index(seq_index)
        rows, cols = seq_shape
        pi, li = _block_owner(i, rows, self.pr)
        pj, lj = _block_owner(j, cols, self.pc)
        return (pi, pj), (li, lj)


class RowCyclic(PartitionPattern):
    """Round-robin distribution of rows (``row_cyclic``)."""

    def __init__(self, p: int):
        require_positive(p, "p", ConfigurationError)
        self.p = p
        self.shape = (p,)

    def split(self, seq: Any) -> ParArray:
        arr = _as_matrix(seq, "RowCyclic")
        return ParArray([arr[k:: self.p, :] for k in range(self.p)], dist=self)

    def unsplit(self, pa: ParArray) -> Any:
        self._check_shape(pa, "RowCyclic.unsplit")
        parts = [np.asarray(part) for part in pa]
        rows = sum(part.shape[0] for part in parts)
        out = np.empty((rows, parts[0].shape[1]), dtype=parts[0].dtype)
        for k, part in enumerate(parts):
            out[k:: self.p, :] = part
        return out

    def index_map(self, seq_index: Index, seq_shape: tuple[int, ...]):
        i, j = normalize_index(seq_index)
        return (i % self.p,), (i // self.p, j)


class ColCyclic(PartitionPattern):
    """Round-robin distribution of columns (``col_cyclic``)."""

    def __init__(self, p: int):
        require_positive(p, "p", ConfigurationError)
        self.p = p
        self.shape = (p,)

    def split(self, seq: Any) -> ParArray:
        arr = _as_matrix(seq, "ColCyclic")
        return ParArray([arr[:, k:: self.p] for k in range(self.p)], dist=self)

    def unsplit(self, pa: ParArray) -> Any:
        self._check_shape(pa, "ColCyclic.unsplit")
        parts = [np.asarray(part) for part in pa]
        cols = sum(part.shape[1] for part in parts)
        out = np.empty((parts[0].shape[0], cols), dtype=parts[0].dtype)
        for k, part in enumerate(parts):
            out[:, k:: self.p] = part
        return out

    def index_map(self, seq_index: Index, seq_shape: tuple[int, ...]):
        i, j = normalize_index(seq_index)
        return (j % self.p,), (i, j // self.p)
