"""Communication skeletons (§2.2): bulk data movement between processors.

These operators are "the data-parallel counterpart of sequential loops which
rearrange array elements".  Two classes:

* **regular** — the destination pattern is uniform: :func:`rotate`,
  :func:`rotate_row`, :func:`rotate_col`, :func:`brdcast`,
  :func:`apply_brdcast`;
* **irregular** — the destination (or source) is an arbitrary function of
  the index: :func:`send` and :func:`fetch`.

``send`` models many-to-one delivery by accumulating a vector of arrivals at
each index; the paper stresses that "no ordering of the elements in the
vector may be assumed" — this implementation delivers in ascending source
order for reproducibility, but callers must treat the vector as a multiset
(the property-based tests do).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.pararray import ParArray
from repro.errors import SkeletonError

__all__ = [
    "rotate",
    "rotate_row",
    "rotate_col",
    "brdcast",
    "apply_brdcast",
    "send",
    "fetch",
]


def _require_1d(pa: ParArray, who: str) -> int:
    if not isinstance(pa, ParArray):
        raise SkeletonError(f"{who} expects a ParArray, got {type(pa).__name__}")
    if pa.ndim != 1:
        raise SkeletonError(f"{who} requires a 1-D ParArray, got shape {pa.shape}")
    return pa.shape[0]


def _require_2d(pa: ParArray, who: str) -> tuple[int, int]:
    if not isinstance(pa, ParArray):
        raise SkeletonError(f"{who} expects a ParArray, got {type(pa).__name__}")
    if pa.ndim != 2:
        raise SkeletonError(f"{who} requires a 2-D ParArray, got shape {pa.shape}")
    return pa.shape  # type: ignore[return-value]


def rotate(k: int, pa: ParArray) -> ParArray:
    """Cyclic shift: ``rotate k A = <A[(i+k) mod n] | i>``.

    Positive ``k`` pulls each element from ``k`` places to the right, i.e.
    the array contents move ``k`` places left; ``rotate(-k)`` inverts
    ``rotate(k)``.
    """
    n = _require_1d(pa, "rotate")
    return pa.with_items(lambda idx, _v: pa[(idx[0] + k) % n])


def rotate_row(df: Callable[[int], int], pa: ParArray) -> ParArray:
    """Rotate every row of an ``m x n`` grid: row ``i`` shifts by ``df(i)``.

    ``out[i, j] = A[i, (j + df(i)) mod n]`` — the distance function lets
    each row rotate by a different amount (Cannon's algorithm skews rows
    with ``df = lambda i: i``).
    """
    _m, n = _require_2d(pa, "rotate_row")
    return pa.with_items(lambda idx, _v: pa[(idx[0], (idx[1] + df(idx[0])) % n)])


def rotate_col(df: Callable[[int], int], pa: ParArray) -> ParArray:
    """Rotate every column: ``out[i, j] = A[(i + df(j)) mod m, j]``."""
    m, _n = _require_2d(pa, "rotate_col")
    return pa.with_items(lambda idx, _v: pa[((idx[0] + df(idx[1])) % m, idx[1])])


def brdcast(a: Any, pa: ParArray) -> ParArray:
    """Broadcast ``a`` to all sites, aligned with the local data.

    ``brdcast a A = map (align_pair a) A``: every component becomes the
    pair ``(a, local)``.
    """
    if not isinstance(pa, ParArray):
        raise SkeletonError(f"brdcast expects a ParArray, got {type(pa).__name__}")
    return pa.with_items(lambda _i, v: (a, v))


def apply_brdcast(f: Callable[[Any], Any], i: Any, pa: ParArray) -> ParArray:
    """Apply ``f`` to the data at index ``i`` and broadcast the result.

    ``applybrdcast f i A = brdcast (f A[i]) A`` — e.g. compute the pivot on
    one processor, pair it with everyone's local data.
    """
    return brdcast(f(pa[i]), pa)


def send(f: Callable[[int], Iterable[int]], pa: ParArray) -> ParArray:
    """Irregular send: element ``k`` is delivered to every index in ``f(k)``.

    The result holds, at each index, the **vector of arrivals** (possibly
    empty, possibly many — the many-to-one case).  Arrivals are listed in
    ascending source order for determinism, but their order is semantically
    unspecified.
    """
    n = _require_1d(pa, "send")
    boxes: list[list[Any]] = [[] for _ in range(n)]
    for k in range(n):
        for dst in f(k):
            if not (0 <= dst < n):
                raise SkeletonError(
                    f"send: destination {dst} of element {k} out of range 0..{n - 1}")
            boxes[dst].append(pa[k])
    return ParArray(boxes, dist=None)


def fetch(f: Callable[[int], int], pa: ParArray) -> ParArray:
    """Irregular fetch: ``out[i] = A[f(i)]`` — the index function names the
    *source* of each element (one-to-one or one-to-many only)."""
    n = _require_1d(pa, "fetch")

    def pick(idx: tuple[int, ...], _v: Any) -> Any:
        src = f(idx[0])
        if not (0 <= src < n):
            raise SkeletonError(
                f"fetch: source {src} for index {idx[0]} out of range 0..{n - 1}")
        return pa[src]

    return pa.with_items(pick, dist=None)
