"""The distributed parallel array — SCL's underlying parallel data structure.

The paper types distributed arrays as ``ParArray index τ``: a collection of
elements of type ``τ`` addressed by a (possibly multi-dimensional) processor
index.  Each element conceptually lives on one virtual processor; nesting a
``ParArray`` inside a ``ParArray`` expresses processor *groups* ("an element
of a nested array corresponds to the concept of a group in MPI"), and leaves
hold arbitrary sequential base-language data (``SeqArray`` — here NumPy
arrays, lists, or any Python value).

:class:`ParArray` is immutable: skeletons always build new arrays, which is
what makes the transformation laws of §4 equational.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence, TypeVar, Union

from repro.errors import ConfigurationError

__all__ = ["ParArray", "Index", "normalize_index"]

_T = TypeVar("_T")

#: A processor index: an int for 1-D arrays or a tuple for grids.
Index = Union[int, tuple[int, ...]]


def normalize_index(index: Index) -> tuple[int, ...]:
    """Coerce an index to its canonical tuple form (``3`` → ``(3,)``)."""
    if isinstance(index, tuple):
        return index
    if isinstance(index, int) and not isinstance(index, bool):
        return (index,)
    raise ConfigurationError(f"invalid ParArray index {index!r}")


class ParArray:
    """An immutable distributed array over a dense grid of virtual processors.

    ``shape`` gives the processor-grid extents — ``(p,)`` for a vector of
    ``p`` components, ``(r, c)`` for an ``r x c`` grid.  Every grid point
    holds exactly one element.  Construct from a sequence (1-D), a nested
    list matching ``shape``, or an explicit ``{index: value}`` mapping::

        ParArray([a, b, c])                     # shape (3,)
        ParArray([[a, b], [c, d]])              # shape (2, 2) if shape given
        ParArray({(0, 0): a, (0, 1): b}, shape=(1, 2))

    Elements are arbitrary; a nested :class:`ParArray` element represents a
    processor group (used by ``split``/``combine`` and nested SPMD).
    """

    __slots__ = ("_shape", "_data", "dist")

    def __init__(
        self,
        items: Union[Sequence[Any], Mapping[Index, Any]],
        shape: tuple[int, ...] | None = None,
        *,
        dist: Any = None,
    ):
        if isinstance(items, ParArray):
            self._shape = items._shape
            self._data = items._data
            self.dist = items.dist if dist is None else dist
            return
        if isinstance(items, Mapping):
            if shape is None:
                raise ConfigurationError("mapping construction requires an explicit shape")
            data = {normalize_index(k): v for k, v in items.items()}
        else:
            items = list(items)
            if shape is None:
                shape = (len(items),)
            if len(shape) == 1:
                data = {(i,): v for i, v in enumerate(items)}
            elif len(shape) == 2:
                rows, cols = shape
                if len(items) != rows or any(len(row) != cols for row in items):
                    raise ConfigurationError(
                        f"nested list does not match shape {shape}")
                data = {(i, j): items[i][j] for i in range(rows) for j in range(cols)}
            else:
                raise ConfigurationError(
                    f"sequence construction supports 1-D/2-D shapes, got {shape}")
        if not all(isinstance(d, int) and d > 0 for d in shape):
            raise ConfigurationError(f"invalid ParArray shape {shape!r}")
        expected = {idx for idx in _grid(shape)}
        if set(data) != expected:
            missing = sorted(expected - set(data))[:3]
            extra = sorted(set(data) - expected)[:3]
            raise ConfigurationError(
                f"indices do not cover shape {shape}: missing {missing}, extra {extra}")
        self._shape = tuple(shape)
        self._data = data
        #: Optional distribution metadata (the PartitionPattern that built
        #: this array), consulted by ``gather`` to invert the partition.
        self.dist = dist

    # ---------------------------------------------------------------- basics

    @property
    def shape(self) -> tuple[int, ...]:
        """Processor-grid extents."""
        return self._shape

    @property
    def ndim(self) -> int:
        """Number of grid dimensions."""
        return len(self._shape)

    @property
    def size(self) -> int:
        """Total number of components (= number of virtual processors)."""
        n = 1
        for d in self._shape:
            n *= d
        return n

    def __len__(self) -> int:
        return self._shape[0]

    def indices(self) -> Iterator[tuple[int, ...]]:
        """All grid indices in row-major order."""
        return _grid(self._shape)

    def __getitem__(self, index: Index) -> Any:
        key = normalize_index(index)
        try:
            return self._data[key]
        except KeyError:
            raise ConfigurationError(
                f"index {index!r} out of range for shape {self._shape}") from None

    def __iter__(self) -> Iterator[Any]:
        """Components in row-major index order."""
        return (self._data[idx] for idx in _grid(self._shape))

    def __contains__(self, value: Any) -> bool:
        return any(v is value or v == value for v in self)

    # ------------------------------------------------------------ conversion

    def to_list(self) -> list[Any]:
        """Components as a flat list in row-major order."""
        return list(self)

    def to_nested_list(self) -> list[Any]:
        """Components as a nested list mirroring ``shape`` (2-D only)."""
        if self.ndim == 1:
            return self.to_list()
        if self.ndim == 2:
            r, c = self._shape
            return [[self._data[(i, j)] for j in range(c)] for i in range(r)]
        raise ConfigurationError(f"to_nested_list supports <=2-D, got {self.ndim}-D")

    # ---------------------------------------------------------- construction

    def with_items(self, fn: Callable[[tuple[int, ...], Any], Any], *,
                   dist: Any = "inherit") -> "ParArray":
        """A new array of the same shape with ``fn(index, value)`` elements.

        This is the single primitive every elementary skeleton reduces to.
        ``dist`` defaults to inheriting this array's distribution metadata.
        """
        out = ParArray(
            {idx: fn(idx, v) for idx, v in self._data.items()},
            self._shape,
            dist=self.dist if dist == "inherit" else dist,
        )
        return out

    def replace(self, index: Index, value: Any) -> "ParArray":
        """A copy with one component replaced."""
        key = normalize_index(index)
        if key not in self._data:
            raise ConfigurationError(
                f"index {index!r} out of range for shape {self._shape}")
        data = dict(self._data)
        data[key] = value
        return ParArray(data, self._shape, dist=self.dist)

    # -------------------------------------------------------------- equality

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParArray):
            return NotImplemented
        if self._shape != other._shape:
            return False
        return all(_values_equal(self._data[i], other._data[i]) for i in self.indices())

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("ParArray is not hashable")

    def __repr__(self) -> str:
        if self.ndim == 1 and self.size <= 8:
            return f"ParArray({self.to_list()!r})"
        return f"ParArray(shape={self._shape}, size={self.size})"


def _grid(shape: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Row-major iteration over a dense grid."""
    if not shape:
        yield ()
        return
    head, *rest = shape
    for i in range(head):
        for tail in _grid(rest):
            yield (i, *tail)


def _values_equal(a: Any, b: Any) -> bool:
    """Structural equality that tolerates NumPy arrays as leaves."""
    import numpy as np

    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        try:
            return bool(np.array_equal(np.asarray(a), np.asarray(b)))
        except (TypeError, ValueError):
            return False
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_values_equal(x, y) for x, y in zip(a, b))
    result = a == b
    return bool(result)
