"""``repro.serve`` — a long-lived skeleton service under sustained load.

The ROADMAP's "millions of users" north star, made measurable: named
*endpoints* — compiled skeleton expressions and stream plans — are
registered once and served many times, so the per-``(expression,
nprocs, opt)`` plan cache is hit on effectively every request at steady
state.  In front of them sits a service with the production shape:

* **admission control** — a bounded request queue; requests beyond the
  bound are shed immediately with a structured :class:`Rejection`
  (reason, tenant, queue depth) rather than queued into collapse,
* **weighted per-tenant fair scheduling** — stride scheduling over
  per-tenant FIFOs: a tenant with weight 3 gets 3x the dispatch rate of
  a weight-1 tenant under contention, and an idle tenant's unused share
  redistributes,
* **observability** — every completion and rejection is recorded
  through the :class:`~repro.obs.sinks.TraceSink` protocol and rolled
  up to p50/p99/throughput tables via :mod:`repro.obs.latency`; pass a
  :class:`~repro.obs.metrics.MetricsRegistry` as ``Service(metrics=...)``
  for the *live* view — per-endpoint/tenant counters, queue gauges and
  latency histograms exported as snapshots or Prometheus text,
* **latency-aware shedding** — ``Service(slo=SloMonitor(...))`` sheds
  with ``Rejection(reason="slo-shed")`` while the rolling p99 is over
  target, recovering when the window clears,
* **load generation** — :func:`closed_loop` (fixed concurrency, every
  client waits for its response) and :func:`open_loop` (scheduled
  arrivals regardless of completions, the overload generator) drive
  thousands of requests through the registry deterministically
  (seeded request mixes).

``python -m repro serve`` runs a sustained closed-loop phase plus an
open-loop burst phase and writes a JSON latency artifact; a ``--smoke``
variant backs the CI ``serve-smoke`` job.
"""

from repro.serve.service import (
    AdmissionError,
    PlanEndpoint,
    PyEndpoint,
    Rejection,
    Service,
    StreamEndpoint,
    Ticket,
)
from repro.serve.loadgen import closed_loop, open_loop
from repro.obs.metrics import MetricsRegistry, SloMonitor

__all__ = [
    "AdmissionError",
    "MetricsRegistry",
    "PlanEndpoint",
    "PyEndpoint",
    "Rejection",
    "Service",
    "SloMonitor",
    "StreamEndpoint",
    "Ticket",
    "closed_loop",
    "open_loop",
]
