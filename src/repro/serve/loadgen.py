"""Open- and closed-loop load generators for the skeleton service.

Two classical shapes:

* :func:`closed_loop` — ``concurrency`` synthetic clients, each issuing
  one request, *waiting for its response*, and issuing the next, until
  a global request budget is spent.  Offered load adapts to service
  speed, so a closed loop measures sustained-throughput latency and —
  with concurrency within the admission bound — never sheds.
* :func:`open_loop` — requests are submitted on a precomputed arrival
  schedule *regardless of completions* (the arrival process of real
  traffic).  When arrivals outrun capacity the queue fills and
  admission control sheds; the rejections are the result, not a
  failure of the harness.

Both are deterministic in *workload content*: request ``i`` of the run
always targets ``mix[i % len(mix)]`` with a payload drawn from an RNG
seeded by ``(seed, i)``, so the multiset of executed requests — and
therefore the total simulated event count — is independent of thread
interleaving.  Only host-time latencies vary between runs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Sequence

import numpy as np

from repro.errors import SkeletonError
from repro.serve.service import AdmissionError, Service, Ticket

__all__ = ["closed_loop", "open_loop"]

#: A request template: (endpoint name, tenant name).
Mix = Sequence[tuple[str, str]]


def _payload_for(service: Service, endpoint_name: str, index: int,
                 seed: int) -> Any:
    endpoint = service.endpoint(endpoint_name)
    rng = np.random.default_rng((seed, index))
    return endpoint.default_payload(rng)


def closed_loop(service: Service, mix: Mix, *, requests: int,
                concurrency: int, seed: int = 0,
                timeout: float = 120.0) -> dict[str, Any]:
    """Drive ``requests`` requests at fixed ``concurrency``; returns a report.

    Request indices are split round-robin across the clients up front
    (client ``c`` issues ``c, c+concurrency, c+2·concurrency, …``), so
    the executed workload is deterministic.  Each client waits for its
    response before issuing the next request — the closed-loop
    invariant.  Rejections (possible when ``concurrency`` exceeds the
    admission bound) are counted and the client moves on.
    """
    if requests < 1 or concurrency < 1:
        raise SkeletonError(
            f"closed_loop needs requests >= 1 and concurrency >= 1, got "
            f"{requests}, {concurrency}")
    if not mix:
        raise SkeletonError("closed_loop needs a non-empty request mix")
    counts = {"ok": 0, "error": 0, "rejected": 0}
    counts_lock = threading.Lock()

    def client(c: int) -> None:
        for i in range(c, requests, concurrency):
            endpoint_name, tenant = mix[i % len(mix)]
            payload = _payload_for(service, endpoint_name, i, seed)
            try:
                ticket = service.submit(endpoint_name, payload, tenant=tenant)
            except AdmissionError:
                with counts_lock:
                    counts["rejected"] += 1
                continue
            try:
                ticket.result(timeout=timeout)
                outcome = "ok"
            except TimeoutError:
                raise
            except BaseException:
                outcome = "error"
            with counts_lock:
                counts[outcome] += 1

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client, args=(c,), daemon=True)
               for c in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t0
    return {
        "mode": "closed-loop",
        "requests": requests,
        "concurrency": concurrency,
        "completed": counts["ok"] + counts["error"],
        "ok": counts["ok"],
        "errors": counts["error"],
        "rejected": counts["rejected"],
        "duration_s": round(duration, 6),
        "throughput_rps": round((counts["ok"] + counts["error"]) / duration, 1)
        if duration > 0 else 0.0,
    }


def open_loop(service: Service, mix: Mix, *, requests: int, rate_rps: float,
              seed: int = 0, drain_timeout: float = 120.0) -> dict[str, Any]:
    """Submit ``requests`` arrivals at ``rate_rps`` regardless of completions.

    Interarrival gaps are exponential (seeded — a Poisson arrival
    process); a submission that trips admission control is counted as
    shed and the generator moves straight to the next arrival.  After
    the last arrival the service is drained so the report's completion
    counts are final.
    """
    if requests < 1 or rate_rps <= 0:
        raise SkeletonError(
            f"open_loop needs requests >= 1 and rate_rps > 0, got "
            f"{requests}, {rate_rps}")
    if not mix:
        raise SkeletonError("open_loop needs a non-empty request mix")
    gaps = np.random.default_rng(seed).exponential(1.0 / rate_rps,
                                                   size=requests)
    tickets: list[Ticket] = []
    rejected = 0
    t0 = time.perf_counter()
    next_at = t0
    for i in range(requests):
        next_at += gaps[i]
        delay = next_at - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        endpoint_name, tenant = mix[i % len(mix)]
        payload = _payload_for(service, endpoint_name, i, seed)
        try:
            tickets.append(service.submit(endpoint_name, payload,
                                          tenant=tenant))
        except AdmissionError:
            rejected += 1
    service.wait_idle(timeout=drain_timeout)
    duration = time.perf_counter() - t0
    ok = errors = 0
    for ticket in tickets:
        record = ticket.record
        if record is not None and record["status"] == "ok":
            ok += 1
        else:
            errors += 1
    return {
        "mode": "open-loop",
        "requests": requests,
        "offered_rps": rate_rps,
        "accepted": len(tickets),
        "rejected": rejected,
        "completed": ok + errors,
        "ok": ok,
        "errors": errors,
        "duration_s": round(duration, 6),
        "achieved_rps": round((ok + errors) / duration, 1)
        if duration > 0 else 0.0,
    }
