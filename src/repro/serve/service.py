"""The skeleton service: endpoint registry, admission control, fairness.

See the package docstring for the architecture.  The pieces:

* :class:`PlanEndpoint` / :class:`StreamEndpoint` / :class:`PyEndpoint`
  — the three endpoint kinds: a compiled skeleton expression over an
  ``nprocs``-wide ParArray, a stream plan applied to the request's
  items, and an opaque Python callable (escape hatch, also what the
  fairness tests use to control timing).
* :class:`Service` — worker threads, per-tenant stride scheduling,
  bounded-queue admission, completion/rejection records, sink events.
* :class:`Ticket` — the caller's handle on one accepted request.

Requests execute on *simulated* machines: a worker thread owns one
:class:`~repro.machine.Machine` per endpoint (machines are cheap,
reusable, and not thread-safe across workers), while the lowered,
optimized plan is shared by all workers through the global plan cache —
which is what makes the steady-state cache hit rate a service-level
metric worth tracking.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from typing import Any, Callable, Iterator, Sequence

from repro.errors import SclError, SkeletonError
from repro.machine import Machine, MachineSpec, PERFECT
from repro.machine.simulator import RunResult
from repro.machine.topology import FullyConnected, Ring
from repro.machine.trace import Span, TraceEvent
from repro.obs.latency import rollup_by, summarize_latencies
from repro.obs.metrics import (
    MetricsRegistry,
    SloMonitor,
    register_plan_cache_gauges,
)
from repro.plan.ir import DEFAULT_FRAGMENT_OPS
from repro.plan.lower import plan_cache_stats
from repro.scl import nodes as N
from repro.stream.plan import StreamOp, StreamPlan, StreamRunStats, Source

__all__ = [
    "AdmissionError",
    "PlanEndpoint",
    "PyEndpoint",
    "Rejection",
    "Service",
    "StreamEndpoint",
    "Ticket",
]


def _run_events(result: RunResult) -> int:
    """Engine-invariant event count (sends + receives), as in repro.perf."""
    return result.total_messages + sum(s.msgs_received for s in result.stats)


@dataclasses.dataclass(frozen=True)
class PlanEndpoint:
    """A named compiled skeleton expression served over ``nprocs`` ranks.

    The request payload is a sequence of exactly ``nprocs`` per-rank
    values (``default_payload`` generates one for load tests).  Execution
    goes through :func:`repro.scl.compile.run_expression` — optimizer
    passes and the vectorized data plane included — so after the first
    request the lowered plan comes from the cache.
    """

    name: str
    expr: N.Node
    nprocs: int
    spec: MachineSpec = PERFECT
    opt: Any = "auto"
    fragment_ops: float = DEFAULT_FRAGMENT_OPS
    topology: str = "ring"
    #: Route the expression through :func:`repro.plan.lower.tuned_lower`:
    #: the first request pays a beam search over the rewrite space
    #: (scored against this endpoint's machine), every later request
    #: hits the tuned-plan cache tier and runs the searched winner.
    tune: bool = False
    beam: int = 4

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise SkeletonError(f"endpoint {self.name!r}: nprocs must be "
                                f">= 1, got {self.nprocs}")
        if self.topology not in ("ring", "full"):
            raise SkeletonError(f"endpoint {self.name!r}: topology must be "
                                f"'ring' or 'full', got {self.topology!r}")

    def default_payload(self, rng: Any) -> list[float]:
        return [float(v) for v in rng.integers(1, 100, size=self.nprocs)]

    def _machine(self) -> Machine:
        if self.nprocs == 1:
            return Machine(1, spec=self.spec)
        topo = (Ring(self.nprocs) if self.topology == "ring"
                else FullyConnected(self.nprocs))
        return Machine(topo, spec=self.spec)

    def execute(self, payload: Any, machines: dict[str, Machine],
                metrics: Any = None) -> tuple[Any, int, float]:
        from repro.core.pararray import ParArray
        from repro.scl.compile import run_expression

        if payload is None:
            raise SkeletonError(f"endpoint {self.name!r} needs a payload of "
                                f"{self.nprocs} per-rank values")
        values = list(payload)
        if len(values) != self.nprocs:
            raise SkeletonError(
                f"endpoint {self.name!r} takes {self.nprocs} per-rank "
                f"values, got {len(values)}")
        machine = machines.get(self.name)
        if machine is None:
            machine = machines[self.name] = self._machine()
        expr = self.expr
        if self.tune:
            from repro.plan.lower import tuned_lower
            from repro.scl.compile import resolve_opt

            tuned = tuned_lower(self.expr, self.nprocs,
                                opt=resolve_opt(self.opt, machine),
                                beam=self.beam)
            expr = tuned.expr
        out, result = run_expression(
            expr, ParArray(values), machine,
            fragment_default_ops=self.fragment_ops, label=self.name,
            opt=self.opt)
        if isinstance(out, ParArray):
            out = out.to_list()
        return out, _run_events(result), result.makespan


@dataclasses.dataclass(frozen=True)
class StreamEndpoint:
    """A named stream plan applied to the request's items.

    ``ops`` is the stage pipeline of a :class:`~repro.stream.plan
    .StreamPlan` *without* its source — each request's payload (an
    iterable of items) becomes the source.  Within one request the
    stream runs sequentially; the service parallelises across requests.
    """

    name: str
    ops: tuple[StreamOp, ...]

    def default_payload(self, rng: Any, *, items: int = 32) -> list[float]:
        return [float(v) for v in rng.integers(1, 100, size=items)]

    def execute(self, payload: Any, machines: dict[str, Machine],
                metrics: Any = None) -> tuple[Any, int, float]:
        if payload is None:
            raise SkeletonError(f"endpoint {self.name!r} needs an iterable "
                                "payload of stream items")
        stats = StreamRunStats()
        if metrics is not None:
            stats.attach_metrics(metrics, name=self.name)
        plan = StreamPlan(Source.of(list(payload)), self.ops)
        out = list(plan.run_seq(stats=stats))
        return out, stats.sim_events, stats.virtual_seconds


@dataclasses.dataclass(frozen=True)
class PyEndpoint:
    """A named opaque callable — the escape hatch endpoint kind."""

    name: str
    fn: Callable[[Any], Any]

    def default_payload(self, rng: Any) -> Any:
        return float(rng.integers(1, 100))

    def execute(self, payload: Any, machines: dict[str, Machine],
                metrics: Any = None) -> tuple[Any, int, float]:
        return self.fn(payload), 0, 0.0


Endpoint = Any  # structural: anything with .name / .execute / .default_payload


@dataclasses.dataclass(frozen=True)
class Rejection:
    """A structured shed decision (what the client gets instead of a slot)."""

    request_id: int
    endpoint: str
    tenant: str
    #: ``"queue-full"`` | ``"slo-shed"`` | ``"unknown-endpoint"`` |
    #: ``"not-running"``
    reason: str
    queue_depth: int
    in_flight: int
    max_queue: int
    t: float  # seconds since service start

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class AdmissionError(SclError):
    """Raised by :meth:`Service.submit` when a request is shed."""

    def __init__(self, rejection: Rejection):
        super().__init__(
            f"request {rejection.request_id} to {rejection.endpoint!r} "
            f"rejected: {rejection.reason} (queue "
            f"{rejection.queue_depth}/{rejection.max_queue}, in-flight "
            f"{rejection.in_flight})")
        self.rejection = rejection


class Ticket:
    """The caller's handle on one accepted request."""

    __slots__ = ("request_id", "endpoint", "tenant", "_done", "_value",
                 "_error", "record")

    def __init__(self, request_id: int, endpoint: str, tenant: str):
        self.request_id = request_id
        self.endpoint = endpoint
        self.tenant = tenant
        self._done = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None
        #: The completion record (set just before :meth:`result` unblocks).
        self.record: dict[str, Any] | None = None

    def _resolve(self, value: Any, error: BaseException | None,
                 record: dict[str, Any]) -> None:
        self._value = value
        self._error = error
        self.record = record
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """Block until the request completes; raises its error, if any."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not done within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value


@dataclasses.dataclass
class _Tenant:
    """Stride-scheduling state for one tenant."""

    name: str
    weight: float
    queue: "list[tuple[Ticket, Endpoint, Any, float]]" = \
        dataclasses.field(default_factory=list)
    #: Virtual time already consumed; the scheduler always dispatches the
    #: backlogged tenant with the smallest pass value.
    pass_value: float = 0.0

    @property
    def stride(self) -> float:
        return 1.0 / self.weight


class Service:
    """A long-lived skeleton service over a registry of named endpoints.

    ``workers`` bounds in-flight execution, ``max_queue`` bounds the
    admission queue (total across tenants; beyond it requests are shed
    with :class:`Rejection` reason ``"queue-full"``).  ``tenants`` maps
    tenant name to scheduling weight; unknown tenants are admitted with
    weight ``default_weight``.  ``sink`` observes one
    :class:`~repro.machine.trace.TraceEvent` per completion (kind
    ``"request"``) and per rejection (kind ``"reject"``), timestamped in
    host seconds since service start.

    ``metrics`` accepts a :class:`~repro.obs.metrics.MetricsRegistry`;
    when given, the service exports per-endpoint/per-tenant request and
    rejection counters, queue-depth and in-flight gauges, per-worker
    latency histograms, and plan-cache gauges.  When ``None`` (the
    default) no instrument is ever touched — the disabled path costs
    nothing (the ``metrics_overhead`` rows in BENCH_simulator.json hold
    it to that).

    ``slo`` accepts a :class:`~repro.obs.metrics.SloMonitor`: completed
    request latencies feed its rolling window, and while the windowed
    p99 is over target, :meth:`submit` sheds with
    ``Rejection(reason="slo-shed")`` *before* the queue bound is
    checked — latency-aware admission, recovering as soon as the window
    clears (breached latencies age out after ``window_s``).

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(self, *, workers: int = 4, max_queue: int = 64,
                 tenants: dict[str, float] | None = None,
                 default_weight: float = 1.0,
                 sink: Any = None,
                 metrics: MetricsRegistry | None = None,
                 slo: SloMonitor | None = None):
        if workers < 1:
            raise SkeletonError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise SkeletonError(f"max_queue must be >= 1, got {max_queue}")
        self.workers = workers
        self.max_queue = max_queue
        self.default_weight = default_weight
        self._sink = sink
        self._registry: dict[str, Endpoint] = {}
        self._tenants: dict[str, _Tenant] = {}
        for name, weight in (tenants or {}).items():
            self._add_tenant(name, weight)
        self._lock = threading.Lock()
        self._sink_lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queued = 0
        self._in_flight = 0
        self._global_pass = 0.0
        self._running = False
        self._draining = False
        self._threads: list[threading.Thread] = []
        self._ids = itertools.count()
        self._t0 = 0.0
        self.completions: list[dict[str, Any]] = []
        self.rejections: list[Rejection] = []
        self._cache_at_start: dict[str, int] = {}
        self._slo = slo
        self._metrics = metrics
        if metrics is not None:
            self._m_requests = metrics.counter(
                "serve_requests_total", "completed requests",
                ("endpoint", "tenant", "status"))
            self._m_rejections = metrics.counter(
                "serve_rejections_total", "shed requests",
                ("endpoint", "tenant", "reason"))
            self._m_latency = metrics.histogram(
                "serve_request_latency_seconds",
                "submit-to-completion latency per worker loop",
                ("endpoint", "worker"))
            self._m_queue_wait = metrics.histogram(
                "serve_queue_wait_seconds",
                "time spent queued before a worker picked the request up",
                ("endpoint",))
            metrics.gauge("serve_queue_depth",
                          "requests admitted but not yet dispatched"
                          ).set_function(lambda: float(self._queued))
            metrics.gauge("serve_in_flight",
                          "requests currently executing on a worker"
                          ).set_function(lambda: float(self._in_flight))
            register_plan_cache_gauges(metrics)
            if slo is not None:
                slo.bind_gauges(metrics, self._now)

    # -- registry -----------------------------------------------------------

    def register(self, endpoint: Endpoint) -> Endpoint:
        """Add a named endpoint; returns it for chaining.

        Names are unique for the life of the service — silently swapping
        an endpoint under live traffic would corrupt per-endpoint
        rollups, so a duplicate name is an error.
        """
        name = getattr(endpoint, "name", None)
        if not name or not hasattr(endpoint, "execute"):
            raise SkeletonError(
                f"not an endpoint (needs .name and .execute): {endpoint!r}")
        if name in self._registry:
            raise SkeletonError(f"endpoint {name!r} is already registered")
        self._registry[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._registry[name]
        except KeyError:
            raise SkeletonError(f"no endpoint named {name!r}; registered: "
                                f"{sorted(self._registry)}") from None

    @property
    def endpoints(self) -> list[str]:
        return sorted(self._registry)

    def _add_tenant(self, name: str, weight: float) -> _Tenant:
        if weight <= 0:
            raise SkeletonError(
                f"tenant {name!r} weight must be positive, got {weight}")
        tenant = _Tenant(name, weight)
        self._tenants[name] = tenant
        return tenant

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Service":
        if self._running:
            return self
        self._running = True
        self._draining = False
        self._t0 = time.perf_counter()
        self._cache_at_start = plan_cache_stats()
        self._threads = [
            threading.Thread(target=self._worker, args=(i,), daemon=True,
                             name=f"serve-worker-{i}")
            for i in range(self.workers)]
        for t in self._threads:
            t.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the service; with ``drain`` (default) finish queued work."""
        with self._lock:
            if not self._running:
                return
            self._draining = drain
            self._running = False
            self._work_ready.notify_all()
        for t in self._threads:
            t.join()
        self._threads = []

    def __enter__(self) -> "Service":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    # -- admission + scheduling --------------------------------------------

    def submit(self, endpoint: str, payload: Any = None, *,
               tenant: str = "default") -> Ticket:
        """Admit one request, or shed it with :class:`AdmissionError`.

        Admission is synchronous and cheap: the queue bound and endpoint
        existence are checked under the scheduler lock, and a shed
        request never touches a worker.
        """
        request_id = next(self._ids)
        with self._lock:
            reason = None
            if not self._running:
                reason = "not-running"
            elif endpoint not in self._registry:
                reason = "unknown-endpoint"
            elif self._slo is not None and self._slo.breached(self._now()):
                # Latency-aware admission engages *before* the queue
                # bound: once the rolling p99 is over target, adding
                # depth only makes every queued request later.
                reason = "slo-shed"
            elif self._queued >= self.max_queue:
                reason = "queue-full"
            if reason is not None:
                rejection = Rejection(
                    request_id, endpoint, tenant, reason,
                    queue_depth=self._queued, in_flight=self._in_flight,
                    max_queue=self.max_queue, t=self._now())
                self.rejections.append(rejection)
                if self._metrics is not None:
                    self._m_rejections.labels(endpoint, tenant, reason).inc()
                self._emit_event(0, "reject", rejection.t, rejection.t, {
                    "endpoint": endpoint, "tenant": tenant,
                    "reason": reason, "queue_depth": rejection.queue_depth,
                }, endpoint)
                raise AdmissionError(rejection)
            state = self._tenants.get(tenant)
            if state is None:
                state = self._add_tenant(tenant, self.default_weight)
            ticket = Ticket(request_id, endpoint, tenant)
            if not state.queue:
                # A tenant returning from idle resumes at the current
                # virtual time: its unused share is not banked.
                state.pass_value = max(state.pass_value, self._global_pass)
            state.queue.append((ticket, self._registry[endpoint], payload,
                                self._now()))
            self._queued += 1
            self._work_ready.notify()
        return ticket

    def _next_request(self) -> "tuple[Ticket, Endpoint, Any, float] | None":
        """Dequeue from the backlogged tenant with the least pass value.

        Caller holds the lock.  Ties break by tenant name, so dispatch
        order is deterministic for a fixed arrival order.
        """
        best: _Tenant | None = None
        for tenant in self._tenants.values():
            if tenant.queue and (best is None
                                 or (tenant.pass_value, tenant.name)
                                 < (best.pass_value, best.name)):
                best = tenant
        if best is None:
            return None
        request = best.queue.pop(0)
        best.pass_value += best.stride
        self._global_pass = max(self._global_pass, best.pass_value)
        self._queued -= 1
        self._in_flight += 1
        return request

    def _worker(self, idx: int) -> None:
        machines: dict[str, Machine] = {}
        while True:
            with self._lock:
                request = self._next_request()
                while request is None:
                    if not self._running:
                        return
                    self._work_ready.wait()
                    request = self._next_request()
            ticket, endpoint, payload, t_submit = request
            t_start = self._now()
            value: Any = None
            error: BaseException | None = None
            events = 0
            makespan = 0.0
            try:
                # The metrics kwarg only reaches endpoints on an
                # instrumented service, so structural endpoints written
                # against the two-argument contract keep working.
                if self._metrics is not None:
                    value, events, makespan = endpoint.execute(
                        payload, machines, metrics=self._metrics)
                else:
                    value, events, makespan = endpoint.execute(payload,
                                                               machines)
            except BaseException as exc:
                error = exc
            t_end = self._now()
            record = {
                "request_id": ticket.request_id,
                "endpoint": ticket.endpoint,
                "tenant": ticket.tenant,
                "worker": idx,
                "status": "error" if error is not None else "ok",
                "latency_s": t_end - t_submit,
                "service_s": t_end - t_start,
                "queue_s": t_start - t_submit,
                "events": events,
                "virtual_seconds": makespan,
            }
            if error is not None:
                record["error"] = repr(error)
            if self._slo is not None and error is None:
                self._slo.observe(record["latency_s"], now=t_end)
            if self._metrics is not None:
                self._m_requests.labels(ticket.endpoint, ticket.tenant,
                                        record["status"]).inc()
                self._m_latency.labels(ticket.endpoint,
                                       str(idx)).observe(record["latency_s"])
                self._m_queue_wait.labels(ticket.endpoint) \
                    .observe(record["queue_s"])
            with self._lock:
                self.completions.append(record)
                self._in_flight -= 1
                self._idle.notify_all()
            self._emit_event(idx, "request", t_submit, t_end, {
                "endpoint": ticket.endpoint, "tenant": ticket.tenant,
                "status": record["status"],
                "queue_ms": round(record["queue_s"] * 1e3, 3),
                "events": events,
            }, ticket.endpoint)
            ticket._resolve(value, error, record)
            # Drain mode: exit once the queue is empty.
            with self._lock:
                if not self._running and (not self._draining
                                          or self._queued == 0):
                    self._work_ready.notify_all()
                    return

    def _emit_event(self, pid: int, kind: str, start: float, end: float,
                    detail: dict[str, Any], label: str) -> None:
        if self._sink is None:
            return
        event = TraceEvent(pid, kind, start, end, detail, Span(label))
        with self._sink_lock:
            self._sink.emit(event)

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no request is queued or in flight."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._queued or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    # -- reporting ----------------------------------------------------------

    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    def cache_stats(self) -> dict[str, Any]:
        """Plan-cache traffic since :meth:`start`, both tiers: plan-cache
        hits/misses/hit rate plus the tuned-plan tier's counters (zero
        unless some endpoint sets ``tune=True``)."""
        now = plan_cache_stats()
        hits = now["hits"] - self._cache_at_start.get("hits", 0)
        misses = now["misses"] - self._cache_at_start.get("misses", 0)
        total = hits + misses
        tuned_hits = now["tuned_hits"] \
            - self._cache_at_start.get("tuned_hits", 0)
        tuned_misses = now["tuned_misses"] \
            - self._cache_at_start.get("tuned_misses", 0)
        tuned_total = tuned_hits + tuned_misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else None,
            "tuned_hits": tuned_hits,
            "tuned_misses": tuned_misses,
            "tuned_hit_rate": (round(tuned_hits / tuned_total, 4)
                               if tuned_total else None),
        }

    def summary(self) -> dict[str, Any]:
        """Snapshot rollup of everything recorded so far."""
        with self._lock:
            completions = list(self.completions)
            rejections = list(self.rejections)
        duration = self._now() if self._t0 else None
        latencies = [r["latency_s"] for r in completions
                     if r["status"] == "ok"]
        by_reason: dict[str, int] = {}
        for rej in rejections:
            by_reason[rej.reason] = by_reason.get(rej.reason, 0) + 1
        slo: dict[str, Any] | None = None
        if self._slo is not None:
            slo = self._slo.rolling(self._now())
            slo["shed"] = by_reason.get("slo-shed", 0)
        return {
            "completed": len(completions),
            "errors": sum(r["status"] == "error" for r in completions),
            "rejected": len(rejections),
            "rejected_by_reason": by_reason,
            "duration_s": round(duration, 6) if duration else None,
            "latency_ms": summarize_latencies(latencies,
                                              duration_s=duration),
            "by_endpoint": rollup_by(completions, "endpoint"),
            "by_tenant": rollup_by(completions, "tenant"),
            "sim_events": sum(r["events"] for r in completions),
            "plan_cache": self.cache_stats(),
            "slo": slo,
        }
