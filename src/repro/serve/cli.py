"""``python -m repro serve`` — sustained load against the skeleton service.

Runs two phases against a default registry of compiled endpoints:

1. **sustained** (closed-loop): a fixed pool of synthetic clients
   drives a seeded endpoint x tenant mix through the service at full
   tilt; the per-``(expression, nprocs, opt)`` plan cache is shared by
   every request, so steady-state hit rate should be ~100%.
2. **burst** (open-loop): the same registry behind a deliberately tiny
   admission bound, offered arrivals far beyond capacity — exercising
   queue-depth shedding and the structured :class:`Rejection` path.

The run prints p50/p99/throughput tables and writes a JSON latency
artifact (``--out``, schema ``repro.serve.latency/v2`` — v2 added the
tuned-plan cache counters to ``plan_cache``).  ``--smoke`` shrinks the
request budget for the CI ``serve-smoke`` job; the artifact shape is
identical.

One endpoint (``sumsq-tuned``) is registered with ``tune=True``: its
first request pays a beam search over the rewrite space
(:func:`repro.plan.lower.tuned_lower`), every later request hits the
tuned-plan cache tier — so the sustained phase's tuned-cache hit rate
should approach 100% just like the plan cache's.
"""

from __future__ import annotations

import argparse
import json
import operator
import sys
from typing import Any

from repro.obs.latency import render_latency_table
from repro.scl.nodes import Fold, Map, Rotate, Scan, compose_nodes
from repro.serve.loadgen import closed_loop, open_loop
from repro.serve.service import PlanEndpoint, Service, StreamEndpoint
from repro.stream.plan import Chunk, MapPlan

__all__ = ["main", "build_service", "default_mix", "run_serve"]

SCHEMA = "repro.serve.latency/v2"

#: Tenant weights for the default registry: ``pro`` is entitled to 3x
#: the dispatch rate of ``free`` under contention.
DEFAULT_TENANTS = {"free": 1.0, "pro": 3.0}


def _square(x: float) -> float:
    return x * x


def _halve(x: float) -> float:
    return x * 0.5


def build_service(*, workers: int = 4, max_queue: int = 128,
                  nprocs: int = 4) -> Service:
    """The default endpoint registry behind ``python -m repro serve``.

    Three compiled plan endpoints plus one stream endpoint — enough to
    exercise distinct plan-cache entries, reducing vs. non-reducing
    result shapes, chunked stream lowering, and the tuned-plan cache
    tier (``sumsq-tuned`` is the naive spelling of ``sumsq`` — adjacent
    un-fused maps and a redundant rotate pair — served with
    ``tune=True``, so the beam search simplifies it once and the tuned
    tier replays the winner), while staying small enough that both
    caches reach steady state within a few requests.
    """
    service = Service(workers=workers, max_queue=max_queue,
                      tenants=dict(DEFAULT_TENANTS))
    service.register(PlanEndpoint("scan-add", Scan(operator.add),
                                  nprocs=nprocs))
    service.register(PlanEndpoint(
        "sumsq", compose_nodes(Fold(operator.add), Map(_square)),
        nprocs=nprocs))
    service.register(PlanEndpoint(
        "sumsq-tuned",
        compose_nodes(Fold(operator.add), Map(_halve), Map(_square),
                      Rotate(1), Rotate(-1)),
        nprocs=nprocs, tune=True))
    service.register(StreamEndpoint(
        "stream-scan", (Chunk(nprocs), MapPlan(Scan(operator.add)))))
    return service


def default_mix() -> list[tuple[str, str]]:
    """The seeded endpoint x tenant request mix (10-request period).

    ``pro`` issues 6/10 of the traffic (matching its 3x weight being the
    majority entitlement), ``free`` 4/10; all four endpoints appear for
    both tenants.
    """
    return [
        ("scan-add", "pro"),
        ("sumsq", "free"),
        ("stream-scan", "pro"),
        ("scan-add", "free"),
        ("sumsq-tuned", "pro"),
        ("sumsq", "pro"),
        ("scan-add", "pro"),
        ("stream-scan", "free"),
        ("sumsq-tuned", "free"),
        ("sumsq", "pro"),
    ]


def run_serve(*, requests: int, concurrency: int, workers: int,
              nprocs: int, seed: int, burst_requests: int,
              burst_rate: float, smoke: bool) -> dict[str, Any]:
    """Run both phases; return the artifact dict (also used by tests)."""
    mix = default_mix()

    with build_service(workers=workers, nprocs=nprocs) as service:
        load = closed_loop(service, mix, requests=requests,
                           concurrency=concurrency, seed=seed)
        sustained = {"load": load, "summary": service.summary()}

    # The burst service gets one worker, a tiny queue, and only the
    # heaviest endpoint (the chunked stream plan, milliseconds per
    # request) offered at a rate far past its capacity, so the
    # open-loop schedule reliably outruns it: shedding is the point of
    # this phase, not an accident of host speed.
    burst_mix = [("stream-scan", "free"), ("stream-scan", "pro")]
    with build_service(workers=1, max_queue=4, nprocs=nprocs) as burst_svc:
        burst_load = open_loop(burst_svc, burst_mix, requests=burst_requests,
                               rate_rps=burst_rate, seed=seed + 1)
        burst = {"load": burst_load, "summary": burst_svc.summary()}

    return {
        "schema": SCHEMA,
        "generated_by": "python -m repro serve",
        "mode": "smoke" if smoke else "full",
        "config": {
            "requests": requests,
            "concurrency": concurrency,
            "workers": workers,
            "nprocs": nprocs,
            "seed": seed,
            "endpoints": ["scan-add", "sumsq", "sumsq-tuned",
                          "stream-scan"],
            "tenants": dict(DEFAULT_TENANTS),
            "burst": {"requests": burst_requests, "rate_rps": burst_rate,
                      "max_queue": 4, "workers": 1},
        },
        "sustained": sustained,
        "burst": burst,
    }


def _report(artifact: dict[str, Any]) -> str:
    sustained = artifact["sustained"]
    burst = artifact["burst"]
    summary = sustained["summary"]
    cache = summary["plan_cache"]
    load = sustained["load"]
    tuned_note = ""
    if cache.get("tuned_hit_rate") is not None:
        tuned_note = (f"; tuned cache {cache['tuned_hits']} hits / "
                      f"{cache['tuned_misses']} misses "
                      f"(hit rate {cache['tuned_hit_rate']:.0%})")
    lines = [
        render_latency_table(
            f"repro serve — sustained closed-loop ({artifact['mode']})",
            {"(all)": summary["latency_ms"], **summary["by_endpoint"]},
            notes=f"{load['completed']} completed / {load['errors']} errors "
                  f"/ {load['rejected']} shed at concurrency "
                  f"{load['concurrency']}; plan cache {cache['hits']} hits / "
                  f"{cache['misses']} misses "
                  f"(hit rate {cache['hit_rate']:.0%})" + tuned_note),
        "",
        render_latency_table(
            "by tenant (weights: " + ", ".join(
                f"{t}={w:g}" for t, w in artifact["config"]["tenants"]
                .items()) + ")",
            summary["by_tenant"]),
        "",
        render_latency_table(
            "burst open-loop (tiny admission bound)",
            {"(all)": burst["summary"]["latency_ms"]},
            notes=f"offered {burst['load']['requests']} @ "
                  f"{burst['load']['offered_rps']:g} rps -> "
                  f"{burst['load']['accepted']} accepted, "
                  f"{burst['load']['rejected']} shed "
                  f"({burst['summary']['rejected_by_reason']})"),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point of ``python -m repro serve``; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="sustained-load run of the long-lived skeleton service")
    parser.add_argument("--smoke", action="store_true",
                        help="small request budget (CI serve-smoke job)")
    parser.add_argument("--requests", type=int, default=None,
                        help="closed-loop request budget "
                             "(default 1200, smoke 160)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="closed-loop client pool size (default 16)")
    parser.add_argument("--workers", type=int, default=4,
                        help="service worker threads (default 4)")
    parser.add_argument("--nprocs", type=int, default=4,
                        help="simulated processors per plan endpoint "
                             "(default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON latency artifact here")
    args = parser.parse_args(argv)

    requests = args.requests
    if requests is None:
        requests = 160 if args.smoke else 1200
    burst_requests = 60 if args.smoke else 200
    artifact = run_serve(requests=requests, concurrency=args.concurrency,
                         workers=args.workers, nprocs=args.nprocs,
                         seed=args.seed, burst_requests=burst_requests,
                         burst_rate=4000.0, smoke=args.smoke)
    print(_report(artifact))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, default=str)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
