"""``python -m repro serve`` — sustained load against the skeleton service.

Runs three phases against a default registry of compiled endpoints:

1. **sustained** (closed-loop): a fixed pool of synthetic clients
   drives a seeded endpoint x tenant mix through the service at full
   tilt; the per-``(expression, nprocs, opt)`` plan cache is shared by
   every request, so steady-state hit rate should be ~100%.
2. **burst** (open-loop): the same registry behind a deliberately tiny
   admission bound, offered arrivals far beyond capacity — exercising
   queue-depth shedding and the structured :class:`Rejection` path.
3. **slo** (open-loop overload): one worker behind a *generous* queue
   but a p99 latency SLO — arrivals outrun capacity, queue wait drives
   the rolling p99 over target, and admission flips to
   ``Rejection(reason="slo-shed")``; once the arrivals stop and the
   window ages out, probe requests confirm admission recovers.

The whole run shares one
:class:`~repro.obs.metrics.MetricsRegistry` sampled by a
:class:`~repro.obs.metrics.PeriodicSnapshotter`, so ``--metrics-out``
writes the companion ``repro.obs.metrics/v1`` snapshot artifact (the CI
``metrics-smoke`` job validates it; ``python -m repro metrics`` renders
it as a dashboard).

The run prints p50/p99/throughput tables and writes a JSON latency
artifact (``--out``, schema ``repro.serve.latency/v3`` — v2 added the
tuned-plan cache counters to ``plan_cache``, v3 the SLO phase with its
shed counts and recovery probe).  ``--smoke`` shrinks the request
budget for the CI ``serve-smoke`` job; the artifact shape is
identical.

One endpoint (``sumsq-tuned``) is registered with ``tune=True``: its
first request pays a beam search over the rewrite space
(:func:`repro.plan.lower.tuned_lower`), every later request hits the
tuned-plan cache tier — so the sustained phase's tuned-cache hit rate
should approach 100% just like the plan cache's.
"""

from __future__ import annotations

import argparse
import json
import operator
import sys
import time
from typing import Any

import numpy as np

from repro.obs.latency import render_latency_table
from repro.obs.metrics import (
    MetricsRegistry,
    PeriodicSnapshotter,
    SloMonitor,
    metrics_artifact,
)
from repro.scl.nodes import Fold, Map, Rotate, Scan, compose_nodes
from repro.serve.loadgen import closed_loop, open_loop
from repro.serve.service import (
    AdmissionError,
    PlanEndpoint,
    Service,
    StreamEndpoint,
)
from repro.stream.plan import Chunk, MapPlan

__all__ = ["main", "build_service", "default_mix", "run_serve"]

SCHEMA = "repro.serve.latency/v3"

#: SLO-phase defaults: the rolling-p99 target and window the overload
#: phase runs under.  The target is far below the queue wait an
#: open-loop overload builds on one worker, and far above an unloaded
#: request, so breach-then-recover is a property of the phase, not of
#: host speed.
SLO_P99_MS = 10.0
SLO_WINDOW_S = 0.75
SLO_MIN_SAMPLES = 8

#: Tenant weights for the default registry: ``pro`` is entitled to 3x
#: the dispatch rate of ``free`` under contention.
DEFAULT_TENANTS = {"free": 1.0, "pro": 3.0}


def _square(x: float) -> float:
    return x * x


def _halve(x: float) -> float:
    return x * 0.5


def build_service(*, workers: int = 4, max_queue: int = 128,
                  nprocs: int = 4,
                  metrics: MetricsRegistry | None = None,
                  slo: SloMonitor | None = None) -> Service:
    """The default endpoint registry behind ``python -m repro serve``.

    Three compiled plan endpoints plus one stream endpoint — enough to
    exercise distinct plan-cache entries, reducing vs. non-reducing
    result shapes, chunked stream lowering, and the tuned-plan cache
    tier (``sumsq-tuned`` is the naive spelling of ``sumsq`` — adjacent
    un-fused maps and a redundant rotate pair — served with
    ``tune=True``, so the beam search simplifies it once and the tuned
    tier replays the winner), while staying small enough that both
    caches reach steady state within a few requests.
    """
    service = Service(workers=workers, max_queue=max_queue,
                      tenants=dict(DEFAULT_TENANTS), metrics=metrics,
                      slo=slo)
    service.register(PlanEndpoint("scan-add", Scan(operator.add),
                                  nprocs=nprocs))
    service.register(PlanEndpoint(
        "sumsq", compose_nodes(Fold(operator.add), Map(_square)),
        nprocs=nprocs))
    service.register(PlanEndpoint(
        "sumsq-tuned",
        compose_nodes(Fold(operator.add), Map(_halve), Map(_square),
                      Rotate(1), Rotate(-1)),
        nprocs=nprocs, tune=True))
    service.register(StreamEndpoint(
        "stream-scan", (Chunk(nprocs), MapPlan(Scan(operator.add)))))
    return service


def default_mix() -> list[tuple[str, str]]:
    """The seeded endpoint x tenant request mix (10-request period).

    ``pro`` issues 6/10 of the traffic (matching its 3x weight being the
    majority entitlement), ``free`` 4/10; all four endpoints appear for
    both tenants.
    """
    return [
        ("scan-add", "pro"),
        ("sumsq", "free"),
        ("stream-scan", "pro"),
        ("scan-add", "free"),
        ("sumsq-tuned", "pro"),
        ("sumsq", "pro"),
        ("scan-add", "pro"),
        ("stream-scan", "free"),
        ("sumsq-tuned", "free"),
        ("sumsq", "pro"),
    ]


def run_slo_phase(*, nprocs: int, requests: int, rate_rps: float, seed: int,
                  metrics: MetricsRegistry | None = None,
                  p99_ms: float = SLO_P99_MS,
                  window_s: float = SLO_WINDOW_S,
                  min_samples: int = SLO_MIN_SAMPLES,
                  probes: int = 5) -> dict[str, Any]:
    """The latency-aware-shedding demonstration phase.

    One worker behind a queue too deep to ever hit ``queue-full``, an
    open-loop overload on the heaviest endpoint, and an
    :class:`SloMonitor`: queue wait drives the rolling p99 over target,
    so the only shed reason available is ``slo-shed``.  After draining
    and one window of quiet, ``probes`` probe requests must all be
    admitted — the recovery half of the ROADMAP item.
    """
    monitor = SloMonitor(p99_ms / 1e3, window_s=window_s,
                         min_samples=min_samples)
    slo_mix = [("stream-scan", "free"), ("stream-scan", "pro")]
    with build_service(workers=1, max_queue=4096, nprocs=nprocs,
                       metrics=metrics, slo=monitor) as svc:
        load = open_loop(svc, slo_mix, requests=requests,
                         rate_rps=rate_rps, seed=seed)
        shed_during = sum(r.reason == "slo-shed" for r in svc.rejections)
        svc.wait_idle(timeout=120.0)
        time.sleep(window_s)  # breached latencies age out of the window
        probe = svc.endpoint("stream-scan")
        admitted = 0
        for i in range(probes):
            payload = probe.default_payload(np.random.default_rng((seed, i)))
            try:
                svc.submit("stream-scan", payload, tenant="pro").result(30.0)
                admitted += 1
            except AdmissionError:
                pass
        summary = svc.summary()
    return {
        "load": load,
        "summary": summary,
        "shed": shed_during,
        "probes": {"attempted": probes, "admitted": admitted},
        "recovered": admitted == probes,
    }


def run_serve(*, requests: int, concurrency: int, workers: int,
              nprocs: int, seed: int, burst_requests: int,
              burst_rate: float, smoke: bool,
              slo_requests: int = 240, slo_rate: float = 3000.0,
              snapshot_interval_s: float = 0.1,
              ) -> tuple[dict[str, Any], dict[str, Any]]:
    """Run all three phases.

    Returns ``(latency_artifact, metrics_artifact)``: the
    ``repro.serve.latency/v3`` document and the companion
    ``repro.obs.metrics/v1`` snapshot series collected across the whole
    run by one shared registry.
    """
    mix = default_mix()
    registry = MetricsRegistry()
    snapper = PeriodicSnapshotter(registry,
                                  interval_s=snapshot_interval_s)

    with snapper:
        with build_service(workers=workers, nprocs=nprocs,
                           metrics=registry) as service:
            load = closed_loop(service, mix, requests=requests,
                               concurrency=concurrency, seed=seed)
            sustained = {"load": load, "summary": service.summary()}

        # The burst service gets one worker, a tiny queue, and only the
        # heaviest endpoint (the chunked stream plan, milliseconds per
        # request) offered at a rate far past its capacity, so the
        # open-loop schedule reliably outruns it: shedding is the point
        # of this phase, not an accident of host speed.
        burst_mix = [("stream-scan", "free"), ("stream-scan", "pro")]
        with build_service(workers=1, max_queue=4, nprocs=nprocs,
                           metrics=registry) as burst_svc:
            burst_load = open_loop(burst_svc, burst_mix,
                                   requests=burst_requests,
                                   rate_rps=burst_rate, seed=seed + 1)
            burst = {"load": burst_load, "summary": burst_svc.summary()}

        slo = run_slo_phase(nprocs=nprocs, requests=slo_requests,
                            rate_rps=slo_rate, seed=seed + 2,
                            metrics=registry)

    artifact = {
        "schema": SCHEMA,
        "generated_by": "python -m repro serve",
        "mode": "smoke" if smoke else "full",
        "config": {
            "requests": requests,
            "concurrency": concurrency,
            "workers": workers,
            "nprocs": nprocs,
            "seed": seed,
            "endpoints": ["scan-add", "sumsq", "sumsq-tuned",
                          "stream-scan"],
            "tenants": dict(DEFAULT_TENANTS),
            "burst": {"requests": burst_requests, "rate_rps": burst_rate,
                      "max_queue": 4, "workers": 1},
            "slo": {"requests": slo_requests, "rate_rps": slo_rate,
                    "p99_target_ms": SLO_P99_MS, "window_s": SLO_WINDOW_S,
                    "min_samples": SLO_MIN_SAMPLES, "workers": 1},
        },
        "sustained": sustained,
        "burst": burst,
        "slo": slo,
    }
    metrics_doc = metrics_artifact(snapper.snapshots,
                                   generated_by="python -m repro serve",
                                   interval_s=snapshot_interval_s)
    return artifact, metrics_doc


def _report(artifact: dict[str, Any]) -> str:
    sustained = artifact["sustained"]
    burst = artifact["burst"]
    slo = artifact["slo"]
    summary = sustained["summary"]
    cache = summary["plan_cache"]
    load = sustained["load"]
    tuned_note = ""
    if cache.get("tuned_hit_rate") is not None:
        tuned_note = (f"; tuned cache {cache['tuned_hits']} hits / "
                      f"{cache['tuned_misses']} misses "
                      f"(hit rate {cache['tuned_hit_rate']:.0%})")
    lines = [
        render_latency_table(
            f"repro serve — sustained closed-loop ({artifact['mode']})",
            {"(all)": summary["latency_ms"], **summary["by_endpoint"]},
            notes=f"{load['completed']} completed / {load['errors']} errors "
                  f"/ {load['rejected']} shed at concurrency "
                  f"{load['concurrency']}; plan cache {cache['hits']} hits / "
                  f"{cache['misses']} misses "
                  f"(hit rate {cache['hit_rate']:.0%})" + tuned_note),
        "",
        render_latency_table(
            "by tenant (weights: " + ", ".join(
                f"{t}={w:g}" for t, w in artifact["config"]["tenants"]
                .items()) + ")",
            summary["by_tenant"]),
        "",
        render_latency_table(
            "burst open-loop (tiny admission bound)",
            {"(all)": burst["summary"]["latency_ms"]},
            notes=f"offered {burst['load']['requests']} @ "
                  f"{burst['load']['offered_rps']:g} rps -> "
                  f"{burst['load']['accepted']} accepted, "
                  f"{burst['load']['rejected']} shed "
                  f"({burst['summary']['rejected_by_reason']})"),
        "",
        render_latency_table(
            "slo open-loop overload (latency-aware shedding)",
            {"(all)": slo["summary"]["latency_ms"]},
            notes=f"p99 target {artifact['config']['slo']['p99_target_ms']:g}"
                  f"ms -> {slo['shed']} slo-shed; recovery probes "
                  f"{slo['probes']['admitted']}/"
                  f"{slo['probes']['attempted']} admitted "
                  f"(recovered={slo['recovered']})"),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point of ``python -m repro serve``; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="sustained-load run of the long-lived skeleton service")
    parser.add_argument("--smoke", action="store_true",
                        help="small request budget (CI serve-smoke job)")
    parser.add_argument("--requests", type=int, default=None,
                        help="closed-loop request budget "
                             "(default 1200, smoke 160)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="closed-loop client pool size (default 16)")
    parser.add_argument("--workers", type=int, default=4,
                        help="service worker threads (default 4)")
    parser.add_argument("--nprocs", type=int, default=4,
                        help="simulated processors per plan endpoint "
                             "(default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON latency artifact here")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the repro.obs.metrics/v1 snapshot "
                             "artifact here")
    args = parser.parse_args(argv)

    requests = args.requests
    if requests is None:
        requests = 160 if args.smoke else 1200
    burst_requests = 60 if args.smoke else 200
    slo_requests = 120 if args.smoke else 240
    artifact, metrics_doc = run_serve(
        requests=requests, concurrency=args.concurrency,
        workers=args.workers, nprocs=args.nprocs,
        seed=args.seed, burst_requests=burst_requests,
        burst_rate=4000.0, smoke=args.smoke, slo_requests=slo_requests)
    print(_report(artifact))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, default=str)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(metrics_doc, fh, indent=2, default=str)
            fh.write("\n")
        print(f"wrote {args.metrics_out} "
              f"({metrics_doc['snapshot_count']} snapshots)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
