"""Functional helpers used throughout the skeleton library.

SCL is a functional coordination language; its transformation laws (map
fusion, communication algebra) are stated in terms of function composition.
These helpers give composition a first-class, introspectable representation
so the rewrite engine can build ``f . g`` objects and tests can compare them
behaviourally.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Sequence, TypeVar

__all__ = ["identity", "compose", "Composed", "check_associative", "foldr"]

_T = TypeVar("_T")
_U = TypeVar("_U")


def identity(x: _T) -> _T:
    """The identity function; unit of composition (``SPMD [] = id``)."""
    return x


class Composed:
    """A concrete ``f . g`` composition: ``Composed(f, g)(x) == f(g(x))``.

    Unlike a lambda, a :class:`Composed` keeps references to its parts so
    rewrite rules and pretty-printers can inspect the pipeline it denotes.
    Instances compare equal when their flattened part lists are equal, which
    makes composition associativity observable in tests.
    """

    __slots__ = ("parts",)

    def __init__(self, *fns: Callable[..., Any]):
        parts: list[Callable[..., Any]] = []
        for fn in fns:
            if isinstance(fn, Composed):
                parts.extend(fn.parts)
            elif fn is identity:
                continue
            else:
                parts.append(fn)
        self.parts: tuple[Callable[..., Any], ...] = tuple(parts)

    def __call__(self, x: Any) -> Any:
        for fn in reversed(self.parts):
            x = fn(x)
        return x

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Composed) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("Composed", self.parts))

    def __repr__(self) -> str:
        names = " . ".join(getattr(f, "__name__", repr(f)) for f in self.parts)
        return f"<Composed {names or 'id'}>"


def compose(*fns: Callable[..., Any]) -> Callable[[Any], Any]:
    """Compose functions right-to-left: ``compose(f, g)(x) == f(g(x))``.

    With no arguments returns :func:`identity`; with one, that function
    unchanged.  Otherwise returns a :class:`Composed` so the pipeline stays
    inspectable.
    """
    if not fns:
        return identity
    if len(fns) == 1:
        return fns[0]
    return Composed(*fns)


def check_associative(
    op: Callable[[_T, _T], _T],
    samples: Sequence[_T],
    *,
    eq: Callable[[Any, Any], bool] | None = None,
    max_triples: int = 64,
) -> bool:
    """Empirically check associativity of ``op`` over sample triples.

    The paper requires the argument of ``fold``/``scan`` to be associative
    ("otherwise the result is undefined").  This helper lets callers and the
    test-suite validate that obligation on representative data.  It tests up
    to ``max_triples`` ordered triples drawn from ``samples``.
    """
    if eq is None:
        eq = lambda a, b: a == b  # noqa: E731 - tiny local default
    triples = itertools.islice(itertools.product(samples, repeat=3), max_triples)
    return all(eq(op(op(a, b), c), op(a, op(b, c))) for a, b, c in triples)


def foldr(op: Callable[[_T, _U], _U], init: _U, xs: Iterable[_T]) -> _U:
    """Right fold: ``foldr op z [a,b,c] == op(a, op(b, op(c, z)))``.

    This is the *sequential* reduction of the paper's map-distribution law
    (§4): ``foldr (f . g) z`` is inherently serial because ``f . g`` is not
    associative; rewriting it to ``fold f . map g`` exposes parallelism.
    """
    acc = init
    for x in reversed(list(xs)):
        acc = op(x, acc)
    return acc
