"""Plain-text table rendering shared by the CLI and the benchmark harness."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table"]


def render_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[Any]], notes: str = "") -> str:
    """Render an aligned, underlined text table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = [title, "=" * len(title), ""]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    if notes:
        lines += ["", notes]
    return "\n".join(lines) + "\n"
