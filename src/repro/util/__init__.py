"""Shared utilities: functional helpers, validation, deterministic RNG."""

from repro.util.functional import compose, identity, check_associative, foldr
from repro.util.validation import (
    require,
    require_type,
    require_positive,
    require_power_of_two,
    is_power_of_two,
    ilog2,
)

__all__ = [
    "compose",
    "identity",
    "check_associative",
    "foldr",
    "require",
    "require_type",
    "require_positive",
    "require_power_of_two",
    "is_power_of_two",
    "ilog2",
]
