"""Argument validation helpers with consistent error types."""

from __future__ import annotations

from typing import Any

from repro.errors import SclError

__all__ = [
    "require",
    "require_type",
    "require_positive",
    "require_power_of_two",
    "is_power_of_two",
    "ilog2",
]


def require(cond: bool, message: str, exc: type[SclError] = SclError) -> None:
    """Raise ``exc(message)`` unless ``cond`` holds."""
    if not cond:
        raise exc(message)


def require_type(value: Any, types: type | tuple[type, ...], name: str,
                 exc: type[SclError] = SclError) -> None:
    """Raise unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = getattr(types, "__name__", str(types))
        raise exc(f"{name} must be {expected}, got {type(value).__name__}")


def require_positive(value: int, name: str, exc: type[SclError] = SclError) -> None:
    """Raise unless ``value`` is a positive integer."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise exc(f"{name} must be a positive integer, got {value!r}")


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return isinstance(n, int) and not isinstance(n, bool) and n > 0 and (n & (n - 1)) == 0


def require_power_of_two(value: int, name: str, exc: type[SclError] = SclError) -> None:
    """Raise unless ``value`` is a positive power of two (hypercube sizes)."""
    if not is_power_of_two(value):
        raise exc(f"{name} must be a positive power of two, got {value!r}")


def ilog2(n: int) -> int:
    """Exact integer log2 of a power of two."""
    require_power_of_two(n, "n")
    return n.bit_length() - 1
