"""SCL — Parallel Skeletons for Structured Composition.

A complete Python implementation of the system described in

    J. Darlington, Y. Guo, H. W. To, J. Yang,
    "Parallel Skeletons for Structured Composition", PPoPP 1995.

Parallel programs are built by composing sequential base-language
procedures with three families of functional skeletons:

* **configuration skeletons** — :func:`~repro.core.partition`,
  :func:`~repro.core.align`, :func:`~repro.core.distribution`,
  :func:`~repro.core.redistribution`, :func:`~repro.core.gather`,
  :func:`~repro.core.split`, :func:`~repro.core.combine`,
* **elementary skeletons** — :func:`~repro.core.parmap` (the paper's
  ``map``), :func:`~repro.core.imap`, :func:`~repro.core.fold`,
  :func:`~repro.core.scan`, and the communication skeletons
  :func:`~repro.core.rotate`, :func:`~repro.core.rotate_row`,
  :func:`~repro.core.rotate_col`, :func:`~repro.core.brdcast`,
  :func:`~repro.core.apply_brdcast`, :func:`~repro.core.send`,
  :func:`~repro.core.fetch`,
* **computational skeletons** — :func:`~repro.core.farm`,
  :func:`~repro.core.spmd`, :func:`~repro.core.iter_until`,
  :func:`~repro.core.iter_for`.

Supporting subsystems:

* :mod:`repro.scl` — skeleton programs as rewritable expressions, with the
  paper's §4 transformation rules (map fusion, map distribution,
  communication algebra, SPMD flattening) and a cost-guided optimiser,
* :mod:`repro.machine` — a discrete-event simulator of a distributed-memory
  machine (AP1000-calibrated cost model, hypercube/mesh topologies, MPI-like
  communicators and collectives) on which skeleton programs run with
  virtual timing — this regenerates the paper's Table 1 and Figure 3,
* :mod:`repro.runtime` — real executors (sequential / threads / processes)
  behind one protocol,
* :mod:`repro.apps` — the paper's example applications (hyperquicksort,
  Gauss–Jordan) plus Cannon matrix multiply and Jacobi iteration.

Quickstart::

    import operator
    from repro import ParArray, parmap, fold

    squares = parmap(lambda x: x * x, ParArray(range(10)))
    total = fold(operator.add, squares)   # 285
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    MachineError,
    RewriteError,
    SclError,
    SkeletonError,
    TopologyError,
)
from repro.core import (
    Block,
    BlockCyclic,
    ColBlock,
    ColCyclic,
    Cyclic,
    Index,
    ParArray,
    PartitionPattern,
    RowBlock,
    RowColBlock,
    RowCyclic,
    SpmdStage,
    align,
    apply_brdcast,
    brdcast,
    combine,
    distribution,
    divide_and_conquer,
    farm,
    fetch,
    fold,
    fold_map,
    gather,
    imap,
    iter_for,
    iter_until,
    parmap,
    partition,
    redistribution,
    rotate,
    rotate_col,
    rotate_row,
    scan,
    scan_seq,
    send,
    split,
    spmd,
    unalign,
)
from repro.runtime import (
    Executor,
    ProcessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    get_executor,
)

__all__ = [
    "__version__",
    # errors
    "SclError", "ConfigurationError", "SkeletonError", "MachineError",
    "DeadlockError", "TopologyError", "RewriteError",
    # data structure
    "ParArray", "Index",
    # partition patterns
    "PartitionPattern", "Block", "BlockCyclic", "Cyclic", "RowBlock", "ColBlock",
    "RowColBlock", "RowCyclic", "ColCyclic",
    # configuration skeletons
    "partition", "align", "unalign", "distribution", "redistribution",
    "gather", "split", "combine",
    # elementary skeletons
    "parmap", "imap", "fold", "scan", "fold_map", "scan_seq",
    # communication skeletons
    "rotate", "rotate_row", "rotate_col", "brdcast", "apply_brdcast",
    "send", "fetch",
    # computational skeletons
    "farm", "spmd", "SpmdStage", "iter_until", "iter_for",
    "divide_and_conquer",
    # executors
    "Executor", "SequentialExecutor", "ThreadExecutor", "ProcessExecutor",
    "get_executor",
]
