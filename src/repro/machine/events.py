"""Simulation request and message objects.

A virtual-processor program is a Python generator that ``yield``s request
objects to the simulator; the simulator advances virtual time, performs the
requested action, and resumes the generator (with a value, for receives).
Three primitive requests exist — everything else (collectives, barriers,
communicators) is built on top of them:

* :class:`Compute` — advance this processor's clock by a CPU cost,
* :class:`Send` — asynchronous (buffered) message send,
* :class:`Recv` — blocking receive, matching on source and tag.

``Recv`` supports ``src=ANY`` / ``tag=ANY`` wildcards.  Matching on a
concrete ``(src, tag)`` pair is FIFO in send order and fully deterministic;
ANY-source matching picks the earliest delivered candidate, which mirrors
the paper's remark that many-to-one communication is non-deterministic
("no ordering of the elements may be assumed").

The request classes are ``slots=True`` dataclasses: the simulator
allocates one request object per event, so the per-instance ``__dict__``
would be pure overhead on the hot path.  Only :class:`Compute` is frozen
(it validates its field); the others are immutable by convention — a
frozen dataclass builds every instance through ``object.__setattr__``,
which costs several times a plain ``__init__`` at this allocation rate.
:class:`Message` goes one step further and is a :class:`~typing.NamedTuple`:
one message object is built per *delivery*, and the C-level tuple
constructor is ~3x cheaper than even a slots-dataclass ``__init__``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, NamedTuple

__all__ = ["ANY", "Compute", "Send", "Recv", "Message"]


class _Any:
    """Singleton wildcard for Recv source/tag matching."""

    _instance: "_Any | None" = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


#: Wildcard accepted by :class:`Recv` for ``src`` and ``tag``.
ANY = _Any()


@dataclasses.dataclass(frozen=True, slots=True)
class Compute:
    """Charge ``seconds`` of CPU time to the yielding processor."""

    seconds: float

    def __post_init__(self) -> None:
        if not (self.seconds >= 0):
            raise ValueError(f"Compute.seconds must be non-negative, got {self.seconds!r}")


@dataclasses.dataclass(slots=True)
class Send:
    """Asynchronous send of ``payload`` to processor ``dst``.

    ``nbytes`` is the wire size; if ``None`` the simulator estimates it with
    :func:`repro.machine.cost.estimate_nbytes`.  The sender is charged
    ``send_overhead`` CPU time; delivery happens after the network transfer
    time for the payload over the topology's hop count.
    """

    dst: int
    payload: Any
    tag: int = 0
    nbytes: int | None = None
    #: Marks a retransmission by the reliable-messaging layer: counted in
    #: ``ProcStats.retransmits`` and traced as ``"retransmit"`` instead of
    #: ``"send"``.  Cost model and delivery are identical to a plain send.
    is_retransmit: bool = False


@dataclasses.dataclass(slots=True)
class Recv:
    """Blocking receive matching ``src`` and ``tag`` (either may be ANY).

    Yielding a ``Recv`` suspends the processor until a matching message has
    been delivered; the generator is resumed with the :class:`Message`.

    ``timeout`` (virtual seconds, measured from the moment the receive is
    posted) bounds the wait: if no matching message has been delivered by
    the deadline the generator is resumed with ``None`` instead of a
    message and the processor's ``timeouts`` counter is incremented.  A
    ``None`` timeout (the default) waits forever, exactly as before.
    """

    src: int | _Any = ANY
    tag: int | _Any = ANY
    timeout: float | None = None

    def matches(self, msg: "Message") -> bool:
        """True iff ``msg`` satisfies this receive's source/tag pattern."""
        return (self.src is ANY or self.src == msg.src) and (
            self.tag is ANY or self.tag == msg.tag
        )


class Message(NamedTuple):
    """A delivered message: payload plus provenance and timing metadata.

    Immutable and allocated on the receive hot path, hence a named tuple
    (C-level construction) rather than a dataclass.

    ``seq`` is the engine's deterministic ordering token: unique per
    message, drawn from ``1..n``, and consistent with arrival-order
    tie-breaking within a run.  Its *absolute* value is an engine detail —
    the per-event core numbers sends in global processing order, the
    batched core numbers deliveries (see ``DESIGN.md``) — so programs
    should treat it as opaque and never branch on the number itself.
    """

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    arrival: float
    seq: int

    def __repr__(self) -> str:
        return (
            f"Message({self.src}->{self.dst}, tag={self.tag}, "
            f"nbytes={self.nbytes}, arrival={self.arrival:.6g})"
        )
