"""Machine cost models.

A :class:`MachineSpec` captures the handful of constants a latency/bandwidth
(Hockney-style) performance model needs:

* ``flop_time`` — seconds per elementary scalar operation (comparison, add,
  multiply) of base-language sequential code,
* ``latency`` — fixed startup cost per message, seconds,
* ``bandwidth`` — sustained transfer rate, bytes/second,
* ``per_hop_latency`` — extra latency per additional network hop,
* ``send_overhead`` / ``recv_overhead`` — CPU time charged to the sender /
  receiver per message (software overhead of the messaging layer),
* ``word_bytes`` — size of one data element on the wire.

The message cost of sending ``n`` bytes across ``h`` hops is::

    latency + per_hop_latency * (h - 1) + n / bandwidth

Presets
-------

``AP1000``
    Calibrated to the Fujitsu AP1000 the paper used: 25 MHz SPARC cells
    (a few MFLOP/s of compiled Fortran), a 25 MB/s T-net with tens of
    microseconds of software latency per message.  These constants give
    sorting runtimes and speedups of the same order and shape as the paper's
    Table 1 / Figure 3.

``MODERN_CLUSTER``
    A contemporary commodity cluster (for "does the shape survive on modern
    constants" ablations).

``PERFECT``
    Zero-cost communication: isolates pure computation/load-balance effects.
"""

from __future__ import annotations

import dataclasses
import math
import numbers
from typing import Any

import numpy as np

from repro.errors import MachineError

__all__ = [
    "MachineSpec",
    "AP1000",
    "MODERN_CLUSTER",
    "PERFECT",
    "estimate_nbytes",
]


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Constants of the latency/bandwidth machine model (see module docs)."""

    name: str = "generic"
    flop_time: float = 1e-7
    latency: float = 50e-6
    bandwidth: float = 25e6
    per_hop_latency: float = 5e-6
    send_overhead: float = 10e-6
    recv_overhead: float = 10e-6
    word_bytes: int = 8

    def __post_init__(self) -> None:
        for field in ("flop_time", "latency", "per_hop_latency",
                      "send_overhead", "recv_overhead"):
            value = getattr(self, field)
            if not (isinstance(value, numbers.Real) and value >= 0 and math.isfinite(value)):
                raise MachineError(f"MachineSpec.{field} must be a finite non-negative real, got {value!r}")
        if not (isinstance(self.bandwidth, numbers.Real) and self.bandwidth > 0):
            raise MachineError(f"MachineSpec.bandwidth must be positive, got {self.bandwidth!r}")
        if not (isinstance(self.word_bytes, int) and self.word_bytes > 0):
            raise MachineError(f"MachineSpec.word_bytes must be a positive int, got {self.word_bytes!r}")

    def transfer_time(self, nbytes: float, hops: int = 1) -> float:
        """Wire time for ``nbytes`` over ``hops`` network hops."""
        if nbytes < 0:
            raise MachineError(f"nbytes must be non-negative, got {nbytes}")
        if hops < 1:
            raise MachineError(f"hops must be >= 1, got {hops}")
        return self.latency + self.per_hop_latency * (hops - 1) + nbytes / self.bandwidth

    def compute_time(self, ops: float) -> float:
        """CPU time for ``ops`` elementary base-language operations."""
        if ops < 0:
            raise MachineError(f"ops must be non-negative, got {ops}")
        return ops * self.flop_time

    def words(self, n: int) -> int:
        """Bytes occupied by ``n`` data elements."""
        return n * self.word_bytes

    def replace(self, **changes: Any) -> "MachineSpec":
        """A copy of this spec with some fields changed."""
        return dataclasses.replace(self, **changes)


#: Fujitsu AP1000-class constants (the paper's evaluation platform).
AP1000 = MachineSpec(
    name="AP1000",
    flop_time=4e-7,        # ~2.5 Mop/s of compiled sequential code per cell
    latency=100e-6,        # T-net software send/recv latency
    bandwidth=25e6,        # 25 MB/s T-net link bandwidth
    per_hop_latency=5e-6,
    send_overhead=25e-6,
    recv_overhead=25e-6,
    word_bytes=4,          # 32-bit integers/reals, as the Fortran code used
)

#: Commodity cluster with ~100x faster CPUs and network than the AP1000.
MODERN_CLUSTER = MachineSpec(
    name="modern-cluster",
    flop_time=1e-9,
    latency=2e-6,
    bandwidth=10e9,
    per_hop_latency=0.2e-6,
    send_overhead=0.5e-6,
    recv_overhead=0.5e-6,
    word_bytes=8,
)

#: Free communication: isolates computation and load balance.
PERFECT = MachineSpec(
    name="perfect",
    flop_time=1e-7,
    latency=0.0,
    bandwidth=float("1e30"),
    per_hop_latency=0.0,
    send_overhead=0.0,
    recv_overhead=0.0,
    word_bytes=8,
)


#: Scalar types known to cost exactly one word each.  Seeded with the
#: built-ins; NumPy scalar types (and any other ``numbers.Number``
#: registrant) are added on first sight so homogeneous lists of them take
#: the flat fast path too.
_NUMERIC_SCALAR_TYPES: set[type] = {int, float, bool, complex}

#: Memo for small hashable tuple payloads, keyed ``(word_bytes, payload)``.
#: Sound because a hashable tuple is deeply immutable for costing purposes
#: (anything mutable inside — list, bytearray, ndarray — makes the key
#: unhashable and falls through to the walk), and equal keys cost equally:
#: every numeric scalar costs one word regardless of type, so ``(1, 2)``
#: and ``(1.0, 2.0)`` colliding under dict equality is harmless.  Cleared
#: wholesale when full; sends repeat a few payload shapes, so the cache
#: stays tiny in practice.
_NBYTES_CACHE: dict[tuple, int] = {}
_NBYTES_CACHE_MAX = 4096
#: Tuples longer than this are not memoized (hashing and key retention
#: would outweigh the walk they save).
_NBYTES_CACHE_MAX_LEN = 64


def estimate_nbytes(payload: Any, word_bytes: int = 8) -> int:
    """Estimate the wire size of a message payload.

    NumPy arrays, ``bytes``/``bytearray`` and ``memoryview`` objects report
    their exact buffer size; scalars cost one word; sequences cost one word
    per element (recursively for nesting); ``None`` and other opaque
    objects cost one word.  This is deliberately simple — programs that
    care pass an explicit ``nbytes`` to ``send``.

    A flat list or tuple whose elements are all the same numeric type is
    costed as ``len * word_bytes`` directly (identical to the recursive
    definition) without the per-element recursion.  Small hashable tuples
    are additionally memoized across calls: programs re-send the same
    header-style payloads thousands of times on the hot path, and one
    C-level hash beats re-walking the structure.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool, numbers.Number)):
        return word_bytes
    if payload is None:
        return word_bytes
    if isinstance(payload, (str, bytes, bytearray)):
        return max(len(payload), 1)
    if isinstance(payload, memoryview):
        return max(payload.nbytes, 1)
    if type(payload) is tuple and len(payload) <= _NBYTES_CACHE_MAX_LEN:
        try:
            return _NBYTES_CACHE[(word_bytes, payload)]
        except KeyError:
            nb = _estimate_walk(payload, word_bytes)
            if len(_NBYTES_CACHE) >= _NBYTES_CACHE_MAX:
                _NBYTES_CACHE.clear()
            _NBYTES_CACHE[(word_bytes, payload)] = nb
            return nb
        except TypeError:
            pass  # unhashable element somewhere inside; walk it
    return _estimate_walk(payload, word_bytes)


def _estimate_walk(payload: Any, word_bytes: int) -> int:
    """The recursive costing walk behind :func:`estimate_nbytes`."""
    if isinstance(payload, (list, tuple, set, frozenset)):
        if payload and isinstance(payload, (list, tuple)):
            t0 = type(payload[0])
            if t0 not in _NUMERIC_SCALAR_TYPES and isinstance(payload[0], numbers.Number):
                _NUMERIC_SCALAR_TYPES.add(t0)
            if t0 in _NUMERIC_SCALAR_TYPES and all(type(x) is t0 for x in payload):
                return len(payload) * word_bytes
        return max(word_bytes,
                   sum(estimate_nbytes(item, word_bytes) for item in payload))
    if isinstance(payload, dict):
        return max(word_bytes,
                   sum(estimate_nbytes(k, word_bytes) + estimate_nbytes(v, word_bytes)
                       for k, v in payload.items()))
    return word_bytes
