"""Execution traces for simulated runs.

When a :class:`~repro.machine.simulator.Machine` is created with
``record_trace=True`` it records one :class:`TraceEvent` per compute, send
and receive interval.  Traces power the communication-algebra benchmarks
(message counts before/after rewriting) and make Gantt-style inspection of
skeleton programs possible.

Fault-injected runs (``Machine(..., faults=...)``) add four more kinds:

* ``"retransmit"`` — a send issued by the reliable-messaging layer with
  ``Send.is_retransmit=True`` (same cost and detail as ``"send"``),
* ``"drop"`` — a message the network ate, either ``reason="injected"``
  (the fault model dropped it) or ``reason="peer-gone"`` (the destination
  had crashed or finished),
* ``"timeout"`` — a ``Recv`` whose deadline expired; spans the wait,
* ``"crash"`` — the zero-length instant a processor died.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Any, Iterator

__all__ = ["TraceEvent", "Trace"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One timed interval on one processor."""

    pid: int
    #: "compute" | "send" | "recv", plus under fault injection
    #: "retransmit" | "drop" | "timeout" | "crash".
    kind: str
    start: float
    end: float
    detail: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An append-only sequence of :class:`TraceEvent` with query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, pid: int, kind: str, start: float, end: float,
               **detail: Any) -> None:
        """Append one event (called by the simulator)."""
        self._events.append(TraceEvent(pid, kind, start, end, detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, *, pid: int | None = None,
               kind: str | None = None) -> list[TraceEvent]:
        """Events filtered by processor and/or kind."""
        return [
            e for e in self._events
            if (pid is None or e.pid == pid) and (kind is None or e.kind == kind)
        ]

    def kind_counts(self) -> Counter:
        """How many events of each kind were recorded."""
        return Counter(e.kind for e in self._events)

    def message_count(self) -> int:
        """Number of sends in the trace."""
        return sum(1 for e in self._events if e.kind == "send")

    def bytes_sent(self) -> int:
        """Total payload bytes across all sends."""
        return sum(e.detail.get("nbytes", 0) for e in self._events if e.kind == "send")

    def busy_intervals(self, pid: int) -> list[tuple[float, float]]:
        """(start, end) of every non-idle interval on ``pid``, in time order."""
        spans = [(e.start, e.end) for e in self.events(pid=pid) if e.duration > 0]
        return sorted(spans)

    def gantt(self, *, width: int = 60) -> str:
        """A coarse ASCII Gantt chart of the run (one row per processor)."""
        if not self._events:
            return "(empty trace)"
        t_end = max(e.end for e in self._events)
        if t_end == 0:
            return "(zero-length trace)"
        pids = sorted({e.pid for e in self._events})
        glyph = {"compute": "#", "send": ">", "recv": "<",
                 "retransmit": "}", "drop": "x", "timeout": "~", "crash": "X"}
        rows = []
        for pid in pids:
            cells = [" "] * width
            for e in self.events(pid=pid):
                lo = int(e.start / t_end * (width - 1))
                hi = max(lo, int(e.end / t_end * (width - 1)))
                for i in range(lo, hi + 1):
                    cells[i] = glyph.get(e.kind, "?")
            rows.append(f"p{pid:<3d}|{''.join(cells)}|")
        return "\n".join(rows)
