"""Execution traces for simulated runs.

When a :class:`~repro.machine.simulator.Machine` is created with
``record_trace=True`` it records one :class:`TraceEvent` per compute, send
and receive interval.  Traces power the communication-algebra benchmarks
(message counts before/after rewriting) and make Gantt-style inspection of
skeleton programs possible.

Fault-injected runs (``Machine(..., faults=...)``) add four more kinds:

* ``"retransmit"`` — a send issued by the reliable-messaging layer with
  ``Send.is_retransmit=True`` (same cost and detail as ``"send"``),
* ``"drop"`` — a message the network ate, either ``reason="injected"``
  (the fault model dropped it) or ``reason="peer-gone"`` (the destination
  had crashed or finished),
* ``"timeout"`` — a ``Recv`` whose deadline expired; spans the wait,
* ``"crash"`` — the zero-length instant a processor died.

Span attribution
----------------

Every event carries a :class:`Span` — a linked stack frame answering
"which skeleton, which plan instruction, which loop iteration produced
this interval?".  Plan executors push spans automatically (one per
instruction, one per loop iteration); raw machine programs can attribute
their own phases with the public context manager
:meth:`repro.machine.simulator.ProcEnv.span`::

    def program(env):
        with env.span("scatter"):
            local = yield from collectives.scatter(comm, blocks, root=0)

Spans are ``None`` when no frame is active (and always in runs recorded
before this layer existed), so untagged traces keep working unchanged.

Streaming and bounded traces
----------------------------

``Trace`` accepts an optional *sink* (any object with ``emit(event)`` /
``close()`` — see :mod:`repro.obs.sinks`) that observes every event as it
is recorded, enabling JSONL / Chrome-trace streaming without holding the
run in memory twice; and an optional ``max_events`` bound that turns the
in-memory store into a ring buffer (oldest events evicted, eviction count
kept in :attr:`Trace.dropped`) so million-event chaos runs cannot OOM.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, deque
from typing import Any, Iterator

__all__ = ["Span", "TraceEvent", "Trace", "frozendetail"]


@dataclasses.dataclass(frozen=True, slots=True)
class Span:
    """One frame of the span-context stack (linked via ``parent``).

    ``label`` is the human name of the frame (skeleton name, instruction
    title, ``"iter 3"``); ``instr`` the position of a plan instruction in
    its instruction sequence; ``iteration`` the loop-iteration number.
    The root frame (``parent is None``) names the program/skeleton.
    """

    label: str
    instr: int | None = None
    iteration: int | None = None
    parent: "Span | None" = None

    def frames(self) -> tuple["Span", ...]:
        """The full stack, root first."""
        out: list[Span] = []
        node: Span | None = self
        while node is not None:
            out.append(node)
            node = node.parent
        out.reverse()
        return tuple(out)

    @property
    def root(self) -> "Span":
        """The outermost frame (the skeleton/program name)."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def path(self) -> str:
        """Human-readable root-to-leaf path, e.g. ``hqs/[2] exchange/iter 0``."""
        return "/".join(f.label for f in self.frames())

    def __str__(self) -> str:
        return self.path()


class frozendetail(dict):
    """An immutable, hashable mapping holding a :class:`TraceEvent`'s detail.

    Construction copies the source mapping, so events never alias a
    caller's (possibly reused) dict; all mutators raise ``TypeError``.
    """

    __slots__ = ()

    def _immutable(self, *args: Any, **kwargs: Any) -> Any:
        raise TypeError("TraceEvent.detail is immutable")

    __setitem__ = _immutable
    __delitem__ = _immutable
    clear = _immutable
    pop = _immutable
    popitem = _immutable
    setdefault = _immutable
    update = _immutable
    __ior__ = _immutable

    def __hash__(self) -> int:  # type: ignore[override]
        return hash(frozenset(self.items()))


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One timed interval on one processor."""

    pid: int
    #: "compute" | "send" | "recv", plus under fault injection
    #: "retransmit" | "drop" | "timeout" | "crash".
    kind: str
    start: float
    end: float
    detail: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Innermost span frame active when the event was recorded (or None).
    span: Span | None = None

    def __post_init__(self) -> None:
        # Freeze (and defensively copy) the detail mapping so events are
        # hashable, shareable and never alias the recorder's dict.
        if type(self.detail) is not frozendetail:
            object.__setattr__(self, "detail", frozendetail(self.detail))

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An append-only sequence of :class:`TraceEvent` with query helpers.

    ``sink`` (optional) observes every event as it is recorded; see the
    module docstring.  ``max_events`` (optional) bounds the in-memory
    store as a ring buffer — evicted-event count in :attr:`dropped` —
    while a streaming sink still sees the complete event stream.
    """

    def __init__(self, *, sink: Any = None,
                 max_events: int | None = None) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self._events: deque[TraceEvent] | list[TraceEvent]
        if max_events is None:
            self._events = []
        else:
            self._events = deque(maxlen=max_events)
        self._maxlen = max_events
        self._sink = sink
        #: Events evicted from the ring buffer (0 in unbounded mode).
        self.dropped = 0

    def record(self, pid: int, kind: str, start: float, end: float,
               *, span: Span | None = None, **detail: Any) -> None:
        """Append one event (called by the simulator)."""
        event = TraceEvent(pid, kind, start, end, detail, span)
        events = self._events
        if self._maxlen is not None and len(events) == self._maxlen:
            self.dropped += 1
        events.append(event)
        if self._sink is not None:
            self._sink.emit(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, *, pid: int | None = None,
               kind: str | None = None) -> list[TraceEvent]:
        """Events filtered by processor and/or kind."""
        return [
            e for e in self._events
            if (pid is None or e.pid == pid) and (kind is None or e.kind == kind)
        ]

    def kind_counts(self) -> Counter:
        """How many events of each kind were recorded."""
        return Counter(e.kind for e in self._events)

    def message_count(self) -> int:
        """Number of sends in the trace."""
        return sum(1 for e in self._events if e.kind == "send")

    def bytes_sent(self) -> int:
        """Total payload bytes across all sends."""
        return sum(e.detail.get("nbytes", 0) for e in self._events if e.kind == "send")

    def busy_intervals(self, pid: int) -> list[tuple[float, float]]:
        """(start, end) of every non-idle interval on ``pid``, in time order."""
        spans = [(e.start, e.end) for e in self.events(pid=pid) if e.duration > 0]
        return sorted(spans)

    def gantt(self, *, width: int = 60) -> str:
        """A coarse ASCII Gantt chart of the run (one row per processor)."""
        if not self._events:
            return "(empty trace)"
        t_end = max(e.end for e in self._events)
        if t_end == 0:
            return "(zero-length trace)"
        pids = sorted({e.pid for e in self._events})
        glyph = {"compute": "#", "send": ">", "recv": "<",
                 "retransmit": "}", "drop": "x", "timeout": "~", "crash": "X"}
        rows = []
        for pid in pids:
            cells = [" "] * width
            for e in self.events(pid=pid):
                lo = int(e.start / t_end * (width - 1))
                hi = max(lo, int(e.end / t_end * (width - 1)))
                for i in range(lo, hi + 1):
                    cells[i] = glyph.get(e.kind, "?")
            rows.append(f"p{pid:<3d}|{''.join(cells)}|")
        return "\n".join(rows)
