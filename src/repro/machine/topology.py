"""Interconnect topologies.

A :class:`Topology` knows how many processors it connects, which pairs are
neighbours, and how many hops a message between two processors traverses.
The simulator charges ``per_hop_latency`` for each hop beyond the first, so
topology choice affects virtual time exactly as it affects a real
store-and-forward network.

Topologies provided:

* :class:`Hypercube` — the paper's sorting example targets a d-dimensional
  hypercube; processors are numbered so that neighbours differ in exactly
  one address bit and hop count is the Hamming distance.
* :class:`Mesh2D` — the AP1000's physical T-net was a 2-D torus; supports
  both torus and non-wrapping mesh variants.
* :class:`Ring` — 1-D torus.
* :class:`FullyConnected` — every pair one hop apart (an idealisation,
  also a good model for modern fat-tree networks at this scale).
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

from repro.errors import TopologyError
from repro.util.validation import ilog2, require_power_of_two

__all__ = ["Topology", "Hypercube", "Ring", "Mesh2D", "FullyConnected"]


class Topology(abc.ABC):
    """Abstract interconnect: a connected graph over ``size`` processors."""

    def __init__(self, size: int):
        if not isinstance(size, int) or isinstance(size, bool) or size <= 0:
            raise TopologyError(f"topology size must be a positive int, got {size!r}")
        self._size = size
        self._hop_rows: dict[int, list[int]] = {}
        self._hop_arrays: dict[int, np.ndarray] = {}
        self._diameter: int | None = None

    @property
    def size(self) -> int:
        """Number of processors."""
        return self._size

    def check_node(self, node: int) -> None:
        """Raise :class:`TopologyError` unless ``node`` is a valid address."""
        if not isinstance(node, int) or isinstance(node, bool) or not (0 <= node < self._size):
            raise TopologyError(f"node {node!r} out of range for {self!r}")

    @abc.abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Shortest-path length between ``src`` and ``dst`` (0 if equal)."""

    def _hops_nocheck(self, src: int, dst: int) -> int:
        """``hops`` for already-validated addresses; subclasses override."""
        return self.hops(src, dst)

    def hop_row(self, src: int) -> list[int]:
        """Hop counts from ``src`` to every node, cached per source.

        The simulator's send path indexes these rows instead of calling
        the validated :meth:`hops` per message; rows are built once per
        source actually used, so memory stays O(p · active senders).
        """
        row = self._hop_rows.get(src)
        if row is None:
            self.check_node(src)
            row = self._hop_rows[src] = self._hop_row_build(src)
        return row

    def _hop_row_build(self, src: int) -> list[int]:
        """Build one hop row; subclasses override with a direct listcomp
        (one Python-level call per row instead of one per entry)."""
        nocheck = self._hops_nocheck
        return [nocheck(src, dst) for dst in range(self._size)]

    def hop_array(self, src: int) -> np.ndarray:
        """Hop counts from ``src`` as a float64 row, clamped to >= 1.

        The batched engine gathers hop counts for a whole message flush
        with one fancy index into this row instead of a Python dict
        lookup per message.  The diagonal is clamped to 1 (self-sends
        are rejected before any delivery cost is computed), so the row
        feeds the vectorised ``per_hop * (hops - 1)`` term directly.
        Rows are built lazily per source actually fanning out and are
        shared across instances with identical routing, keeping memory
        O(p · active multi-destination senders).
        """
        arr = self._hop_arrays.get(src)
        if arr is None:
            row = np.asarray(self.hop_row(src), dtype=np.float64)
            np.maximum(row, 1.0, out=row)
            arr = self._hop_arrays[src] = row
        return arr

    @abc.abstractmethod
    def neighbors(self, node: int) -> tuple[int, ...]:
        """Directly connected processors of ``node``."""

    def diameter(self) -> int:
        """Maximum hop count over all pairs (computed once, then cached).

        Subclasses with a closed form override this entirely; the generic
        all-pairs scan runs at most once per topology instance.
        """
        if self._diameter is None:
            size = self._size
            self._diameter = max(
                self._hops_nocheck(a, b)
                for a in range(size) for b in range(size)
            ) if size > 1 else 0
        return self._diameter

    def edges(self) -> Iterator[tuple[int, int]]:
        """Undirected edge list (each edge once, ``a < b``)."""
        for a in range(self._size):
            for b in self.neighbors(a):
                if a < b:
                    yield (a, b)

    def to_networkx(self):  # pragma: no cover - convenience, needs networkx
        """The topology as a ``networkx.Graph`` (for visualisation/analysis)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._size))
        g.add_edges_from(self.edges())
        return g

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={self._size})"


class Hypercube(Topology):
    """d-dimensional binary hypercube on ``2**d`` processors.

    Node addresses are d-bit integers; two nodes are neighbours iff their
    addresses differ in exactly one bit, and the hop count between any two
    nodes is the Hamming distance of their addresses.  ``partner(node, dim)``
    gives the neighbour across dimension ``dim`` — the ``xor(i, 2**d)``
    partner function of the paper's hyperquicksort.
    """

    _SHARED_ROWS: dict[int, dict[int, list[int]]] = {}
    _SHARED_ARRAYS: dict[int, dict[int, np.ndarray]] = {}

    def __init__(self, dim: int):
        if not isinstance(dim, int) or isinstance(dim, bool) or dim < 0:
            raise TopologyError(f"hypercube dimension must be a non-negative int, got {dim!r}")
        super().__init__(1 << dim)
        self._dim = dim
        # Routing depends only on ``dim``: share the lazily built hop rows
        # across instances so repeated simulations don't rebuild them.
        self._hop_rows = Hypercube._SHARED_ROWS.setdefault(dim, {})
        self._hop_arrays = Hypercube._SHARED_ARRAYS.setdefault(dim, {})

    @classmethod
    def of_size(cls, size: int) -> "Hypercube":
        """Hypercube with ``size`` nodes (must be a power of two)."""
        require_power_of_two(size, "hypercube size", TopologyError)
        return cls(ilog2(size))

    @property
    def dim(self) -> int:
        """Number of dimensions (log2 of size)."""
        return self._dim

    def partner(self, node: int, dim: int) -> int:
        """The neighbour of ``node`` across dimension ``dim``."""
        self.check_node(node)
        if not (0 <= dim < max(self._dim, 1)) or self._dim == 0:
            raise TopologyError(f"dimension {dim} out of range for {self!r}")
        return node ^ (1 << dim)

    def hops(self, src: int, dst: int) -> int:
        self.check_node(src)
        self.check_node(dst)
        return (src ^ dst).bit_count()

    def _hops_nocheck(self, src: int, dst: int) -> int:
        return (src ^ dst).bit_count()

    def _hop_row_build(self, src: int) -> list[int]:
        return [(src ^ dst).bit_count() for dst in range(self._size)]

    def neighbors(self, node: int) -> tuple[int, ...]:
        self.check_node(node)
        return tuple(node ^ (1 << d) for d in range(self._dim))

    def diameter(self) -> int:
        return self._dim

    def __repr__(self) -> str:
        return f"Hypercube(dim={self._dim}, size={self._size})"


class Ring(Topology):
    """1-D torus: node ``i`` connects to ``(i±1) mod size``."""

    _SHARED_ROWS: dict[int, dict[int, list[int]]] = {}
    _SHARED_ARRAYS: dict[int, dict[int, np.ndarray]] = {}

    def __init__(self, size: int):
        super().__init__(size)
        # Routing depends only on ``size``; share rows across instances.
        self._hop_rows = Ring._SHARED_ROWS.setdefault(size, {})
        self._hop_arrays = Ring._SHARED_ARRAYS.setdefault(size, {})

    def hops(self, src: int, dst: int) -> int:
        self.check_node(src)
        self.check_node(dst)
        d = abs(src - dst)
        return min(d, self._size - d)

    def _hops_nocheck(self, src: int, dst: int) -> int:
        d = abs(src - dst)
        return min(d, self._size - d)

    def _hop_row_build(self, src: int) -> list[int]:
        size = self._size
        return [min(d, size - d) for d in (abs(src - dst) for dst in range(size))]

    def neighbors(self, node: int) -> tuple[int, ...]:
        self.check_node(node)
        if self._size == 1:
            return ()
        if self._size == 2:
            return (1 - node,)
        return ((node - 1) % self._size, (node + 1) % self._size)

    def diameter(self) -> int:
        return self._size // 2


class Mesh2D(Topology):
    """2-D mesh of ``rows x cols`` processors, optionally wrapping (torus).

    Node ``i`` sits at ``(i // cols, i % cols)``; hop count is the Manhattan
    distance (with wrap-around per axis when ``torus=True``).  The AP1000's
    T-net was a 2-D torus, so ``Mesh2D(r, c, torus=True)`` is the most
    faithful model of the paper's platform.
    """

    def __init__(self, rows: int, cols: int, *, torus: bool = True):
        for name, v in (("rows", rows), ("cols", cols)):
            if not isinstance(v, int) or isinstance(v, bool) or v <= 0:
                raise TopologyError(f"Mesh2D {name} must be a positive int, got {v!r}")
        super().__init__(rows * cols)
        self._rows = rows
        self._cols = cols
        self._torus = torus
        # Routing depends only on the mesh parameters; share rows.
        self._hop_rows = Mesh2D._SHARED_ROWS.setdefault((rows, cols, torus), {})
        self._hop_arrays = Mesh2D._SHARED_ARRAYS.setdefault((rows, cols, torus), {})

    _SHARED_ROWS: dict[tuple[int, int, bool], dict[int, list[int]]] = {}
    _SHARED_ARRAYS: dict[tuple[int, int, bool], dict[int, np.ndarray]] = {}

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def torus(self) -> bool:
        return self._torus

    def coords(self, node: int) -> tuple[int, int]:
        """(row, col) of a node address."""
        self.check_node(node)
        return divmod(node, self._cols)

    def node_at(self, row: int, col: int) -> int:
        """Node address of (row, col)."""
        if not (0 <= row < self._rows and 0 <= col < self._cols):
            raise TopologyError(f"coords ({row},{col}) out of range for {self!r}")
        return row * self._cols + col

    def _axis_dist(self, a: int, b: int, extent: int) -> int:
        d = abs(a - b)
        return min(d, extent - d) if self._torus else d

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        return self._axis_dist(r1, r2, self._rows) + self._axis_dist(c1, c2, self._cols)

    def _hops_nocheck(self, src: int, dst: int) -> int:
        cols = self._cols
        r1, c1 = divmod(src, cols)
        r2, c2 = divmod(dst, cols)
        return self._axis_dist(r1, r2, self._rows) + self._axis_dist(c1, c2, cols)

    def diameter(self) -> int:
        # Closed form: the farthest pair is extremal on both axes
        # independently — half the extent per axis with wrap-around,
        # the full extent minus one without.
        if self._torus:
            return self._rows // 2 + self._cols // 2
        return (self._rows - 1) + (self._cols - 1)

    def neighbors(self, node: int) -> tuple[int, ...]:
        r, c = self.coords(node)
        out: list[int] = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = r + dr, c + dc
            if self._torus:
                nr %= self._rows
                nc %= self._cols
            elif not (0 <= nr < self._rows and 0 <= nc < self._cols):
                continue
            cand = self.node_at(nr, nc)
            if cand != node and cand not in out:
                out.append(cand)
        return tuple(out)

    def __repr__(self) -> str:
        kind = "torus" if self._torus else "mesh"
        return f"Mesh2D({self._rows}x{self._cols} {kind})"


class FullyConnected(Topology):
    """Complete graph: every distinct pair is one hop apart."""

    _SHARED_ROWS: dict[int, dict[int, list[int]]] = {}
    _SHARED_ARRAYS: dict[int, dict[int, np.ndarray]] = {}

    def __init__(self, size: int):
        super().__init__(size)
        # Routing depends only on ``size``; share rows across instances.
        self._hop_rows = FullyConnected._SHARED_ROWS.setdefault(size, {})
        self._hop_arrays = FullyConnected._SHARED_ARRAYS.setdefault(size, {})

    def hops(self, src: int, dst: int) -> int:
        self.check_node(src)
        self.check_node(dst)
        return 0 if src == dst else 1

    def _hops_nocheck(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1

    def _hop_row_build(self, src: int) -> list[int]:
        row = [1] * self._size
        row[src] = 0
        return row

    def neighbors(self, node: int) -> tuple[int, ...]:
        self.check_node(node)
        return tuple(n for n in range(self._size) if n != node)

    def diameter(self) -> int:
        return 1 if self._size > 1 else 0
