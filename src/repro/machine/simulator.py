"""Discrete-event simulator for message-passing programs.

The :class:`Machine` runs one generator-based program per virtual processor.
Each processor has its own virtual clock; the scheduler always steps the
*runnable* processor with the smallest clock, which keeps message causality
intact (a processor can only be overtaken by messages sent at earlier or
equal virtual times).  Receives on a concrete ``(src, tag)`` pair are FIFO
and deterministic; the simulation result therefore does not depend on host
scheduling, only on the program and the cost model.

Programs look like::

    def worker(env: ProcEnv):
        yield env.work(ops=1000)                      # charge CPU time
        yield env.send(dst=1, payload=data)           # async send
        msg = yield env.recv(src=1)                   # blocking receive
        return msg.payload                            # per-proc result

    machine = Machine(Hypercube(3), spec=AP1000)
    result = machine.run(worker)
    result.makespan            # virtual seconds
    result.values              # list of per-processor return values

Accounting: per processor the simulator tracks compute seconds, messaging
overhead seconds, idle (blocked-waiting) seconds, message and byte counters;
:class:`RunResult` aggregates them and exposes the makespan used by all the
benchmarks in this repository.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.errors import DeadlockError, MachineError
from repro.machine.cost import MachineSpec, estimate_nbytes, PERFECT
from repro.machine.events import ANY, Compute, Message, Recv, Send
from repro.machine.topology import FullyConnected, Topology
from repro.machine.trace import Trace

__all__ = ["Machine", "ProcEnv", "ProcStats", "RunResult"]

Program = Callable[["ProcEnv"], Generator[Any, Any, Any]]

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"


@dataclasses.dataclass
class ProcStats:
    """Per-processor accounting accumulated during a run."""

    pid: int
    compute_seconds: float = 0.0
    overhead_seconds: float = 0.0
    idle_seconds: float = 0.0
    msgs_sent: int = 0
    msgs_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    finish_time: float = 0.0

    @property
    def busy_seconds(self) -> float:
        """Compute plus messaging-overhead time."""
        return self.compute_seconds + self.overhead_seconds


@dataclasses.dataclass
class RunResult:
    """Outcome of a :meth:`Machine.run`: values, timing, traffic."""

    values: list[Any]
    stats: list[ProcStats]
    trace: Trace | None = None

    @property
    def nprocs(self) -> int:
        return len(self.stats)

    @property
    def makespan(self) -> float:
        """Virtual time at which the last processor finished."""
        return max((s.finish_time for s in self.stats), default=0.0)

    @property
    def total_messages(self) -> int:
        return sum(s.msgs_sent for s in self.stats)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def total_compute_seconds(self) -> float:
        return sum(s.compute_seconds for s in self.stats)

    @property
    def total_idle_seconds(self) -> float:
        return sum(s.idle_seconds for s in self.stats)

    def efficiency(self) -> float:
        """Mean fraction of the makespan each processor spent busy."""
        if self.makespan == 0:
            return 1.0
        return sum(s.busy_seconds for s in self.stats) / (self.nprocs * self.makespan)

    def summary(self) -> str:
        """Human-readable one-paragraph run summary."""
        return (
            f"{self.nprocs} procs, makespan {self.makespan:.6f}s, "
            f"{self.total_messages} msgs / {self.total_bytes} bytes, "
            f"efficiency {self.efficiency():.1%}"
        )


class ProcEnv:
    """Handle given to each virtual-processor program.

    Exposes the processor id, machine spec and topology, and constructors
    for the three primitive simulation requests.  All methods build request
    objects — the program must ``yield`` them to take effect.
    """

    def __init__(self, machine: "Machine", pid: int):
        self._machine = machine
        self.pid = pid

    @property
    def nprocs(self) -> int:
        """Total number of processors in the machine."""
        return self._machine.nprocs

    @property
    def spec(self) -> MachineSpec:
        """The machine's cost model."""
        return self._machine.spec

    @property
    def topology(self) -> Topology:
        """The machine's interconnect."""
        return self._machine.topology

    @property
    def now(self) -> float:
        """This processor's current virtual clock."""
        return self._machine._clock[self.pid]

    def compute(self, seconds: float) -> Compute:
        """Request: charge ``seconds`` of CPU time."""
        return Compute(float(seconds))

    def work(self, ops: float) -> Compute:
        """Request: charge CPU time for ``ops`` elementary operations."""
        return Compute(self.spec.compute_time(ops))

    def send(self, dst: int, payload: Any, *, tag: int = 0,
             nbytes: int | None = None) -> Send:
        """Request: asynchronously send ``payload`` to processor ``dst``."""
        return Send(dst=dst, payload=payload, tag=tag, nbytes=nbytes)

    def recv(self, src: int | Any = ANY, *, tag: int | Any = ANY) -> Recv:
        """Request: block until a message matching ``(src, tag)`` arrives."""
        return Recv(src=src, tag=tag)

    def __repr__(self) -> str:
        return f"ProcEnv(pid={self.pid}, nprocs={self.nprocs})"


class _Proc:
    """Internal per-processor simulator state."""

    __slots__ = ("pid", "gen", "status", "pending_recv", "resume_value",
                 "recv_posted_at", "mailbox", "value")

    def __init__(self, pid: int, gen: Generator[Any, Any, Any]):
        self.pid = pid
        self.gen = gen
        self.status = _READY
        self.pending_recv: Recv | None = None
        self.resume_value: Any = None
        self.recv_posted_at = 0.0
        self.mailbox: list[Message] = []
        self.value: Any = None


class Machine:
    """A simulated distributed-memory machine (see module docstring)."""

    def __init__(self, topology: Topology | int, *,
                 spec: MachineSpec = PERFECT, record_trace: bool = False,
                 single_port: bool = False):
        if isinstance(topology, int):
            topology = FullyConnected(topology)
        if not isinstance(topology, Topology):
            raise MachineError(
                f"topology must be a Topology or int, got {type(topology).__name__}")
        self.topology = topology
        self.spec = spec
        self.record_trace = record_trace
        #: Single-port (full-duplex) contention model: each processor's
        #: network port transmits at most one message at a time, and
        #: receives at most one at a time.  Port reservations are made in
        #: the simulator's (causal) global processing order.  Off by
        #: default: the base model is contention-free Hockney.
        self.single_port = single_port
        self._clock: list[float] = []
        self._tx_free: list[float] = []
        self._rx_free: list[float] = []

    @property
    def nprocs(self) -> int:
        """Number of virtual processors."""
        return self.topology.size

    def run(self, program: Program | Sequence[Program], *,
            args: Iterable[tuple] | None = None) -> RunResult:
        """Execute one program per processor and return the result.

        ``program`` is either a single program (SPMD: every processor runs
        it, distinguished by ``env.pid``) or a sequence of ``nprocs``
        programs (MPMD).  ``args`` optionally supplies extra positional
        arguments per processor.
        """
        n = self.nprocs
        if callable(program):
            programs: list[Program] = [program] * n
        else:
            programs = list(program)
            if len(programs) != n:
                raise MachineError(
                    f"expected {n} programs, got {len(programs)}")
        extra = [()] * n if args is None else [tuple(a) for a in args]
        if len(extra) != n:
            raise MachineError(f"expected {n} arg tuples, got {len(extra)}")

        self._clock = [0.0] * n
        self._tx_free = [0.0] * n
        self._rx_free = [0.0] * n
        trace = Trace() if self.record_trace else None
        stats = [ProcStats(pid=p) for p in range(n)]
        procs = []
        for pid in range(n):
            env = ProcEnv(self, pid)
            gen = programs[pid](env, *extra[pid])
            if not isinstance(gen, Generator):
                raise MachineError(
                    f"program for pid {pid} must be a generator function "
                    f"(did you forget to yield?); got {type(gen).__name__}")
            procs.append(_Proc(pid, gen))

        send_seq = 0
        alive = n

        def deliver(msg: Message) -> None:
            dst = procs[msg.dst]
            if dst.status == _DONE:
                raise MachineError(
                    f"message {msg!r} sent to already-finished processor {msg.dst}")
            dst.mailbox.append(msg)
            if dst.status == _BLOCKED and dst.pending_recv is not None:
                self._try_unblock(dst, stats[dst.pid], trace)

        while alive > 0:
            runnable = [p for p in procs if p.status == _READY]
            if not runnable:
                blocked = [p.pid for p in procs if p.status == _BLOCKED]
                raise DeadlockError(
                    f"deadlock: processors {blocked} blocked on receives "
                    f"that can never be satisfied")
            proc = min(runnable, key=lambda p: (self._clock[p.pid], p.pid))
            pid = proc.pid
            st = stats[pid]
            try:
                request = proc.gen.send(proc.resume_value)
            except StopIteration as stop:
                proc.status = _DONE
                proc.value = stop.value
                st.finish_time = self._clock[pid]
                alive -= 1
                if proc.mailbox:
                    raise MachineError(
                        f"processor {pid} finished with {len(proc.mailbox)} "
                        f"unconsumed messages in its mailbox")
                continue
            proc.resume_value = None

            if isinstance(request, Compute):
                start = self._clock[pid]
                self._clock[pid] = start + request.seconds
                st.compute_seconds += request.seconds
                if trace is not None:
                    trace.record(pid, "compute", start, self._clock[pid])
            elif isinstance(request, Send):
                self.topology.check_node(request.dst)
                if request.dst == pid:
                    raise MachineError(f"processor {pid} sent a message to itself")
                nbytes = (estimate_nbytes(request.payload, self.spec.word_bytes)
                          if request.nbytes is None else int(request.nbytes))
                start = self._clock[pid]
                self._clock[pid] = start + self.spec.send_overhead
                st.overhead_seconds += self.spec.send_overhead
                hops = max(1, self.topology.hops(pid, request.dst))
                if self.single_port:
                    wire = nbytes / self.spec.bandwidth
                    startup = (self.spec.latency
                               + self.spec.per_hop_latency * (hops - 1))
                    tx_start = max(self._clock[pid], self._tx_free[pid])
                    self._tx_free[pid] = tx_start + wire
                    arrival = max(tx_start + startup,
                                  self._rx_free[request.dst]) + wire
                    self._rx_free[request.dst] = arrival
                else:
                    arrival = self._clock[pid] + self.spec.transfer_time(nbytes, hops)
                send_seq += 1
                msg = Message(src=pid, dst=request.dst, tag=request.tag,
                              payload=request.payload, nbytes=nbytes,
                              sent_at=start, arrival=arrival, seq=send_seq)
                st.msgs_sent += 1
                st.bytes_sent += nbytes
                if trace is not None:
                    trace.record(pid, "send", start, self._clock[pid],
                                 dst=request.dst, tag=request.tag, nbytes=nbytes)
                deliver(msg)
            elif isinstance(request, Recv):
                proc.status = _BLOCKED
                proc.pending_recv = request
                proc.recv_posted_at = self._clock[pid]
                self._try_unblock(proc, st, trace)
            else:
                raise MachineError(
                    f"processor {pid} yielded {request!r}; expected "
                    f"Compute, Send or Recv (use `yield from` for collectives)")

        return RunResult(values=[p.value for p in procs], stats=stats, trace=trace)

    def _try_unblock(self, proc: _Proc, st: ProcStats, trace: Trace | None) -> None:
        """Complete ``proc``'s pending receive if a matching message exists."""
        recv = proc.pending_recv
        assert recv is not None
        best_idx = -1
        for i, msg in enumerate(proc.mailbox):
            if recv.matches(msg):
                if best_idx < 0 or (
                    (msg.arrival, msg.seq)
                    < (proc.mailbox[best_idx].arrival, proc.mailbox[best_idx].seq)
                ):
                    best_idx = i
                # concrete-(src,tag) receives are FIFO in send order
                if recv.src is not ANY and recv.tag is not ANY:
                    break
        if best_idx < 0:
            return
        msg = proc.mailbox.pop(best_idx)
        pid = proc.pid
        wait_start = proc.recv_posted_at
        ready_at = max(wait_start, msg.arrival)
        st.idle_seconds += ready_at - wait_start
        self._clock[pid] = ready_at + self.spec.recv_overhead
        st.overhead_seconds += self.spec.recv_overhead
        st.msgs_received += 1
        st.bytes_received += msg.nbytes
        if trace is not None:
            trace.record(pid, "recv", wait_start, self._clock[pid],
                         src=msg.src, tag=msg.tag, nbytes=msg.nbytes)
        proc.status = _READY
        proc.pending_recv = None
        proc.resume_value = msg
