"""Discrete-event simulator for message-passing programs.

The :class:`Machine` runs one generator-based program per virtual processor.
Each processor has its own virtual clock; the scheduler always steps the
*runnable* processor with the smallest clock, which keeps message causality
intact (a processor can only be overtaken by messages sent at earlier or
equal virtual times).  Receives on a concrete ``(src, tag)`` pair are FIFO
and deterministic; the simulation result therefore does not depend on host
scheduling, only on the program and the cost model.

Programs look like::

    def worker(env: ProcEnv):
        yield env.work(ops=1000)                      # charge CPU time
        yield env.send(dst=1, payload=data)           # async send
        msg = yield env.recv(src=1)                   # blocking receive
        return msg.payload                            # per-proc result

    machine = Machine(Hypercube(3), spec=AP1000)
    result = machine.run(worker)
    result.makespan            # virtual seconds
    result.values              # list of per-processor return values

Accounting: per processor the simulator tracks compute seconds, messaging
overhead seconds, idle (blocked-waiting) seconds, message and byte counters;
:class:`RunResult` aggregates them and exposes the makespan used by all the
benchmarks in this repository.

Engine internals (host performance)
-----------------------------------

The hot path is O(log p) per event, not O(p):

* **Run queue** — a ``heapq`` of ``(clock, pid)`` entries.  An entry exists
  exactly for each *ready* processor (blocked and finished processors have
  none), so popping the heap yields the same ``min (clock, pid)`` order the
  original ready-list scan produced, at O(log p) per step.  A status/clock
  guard on pop lazily discards entries that a future code path might
  invalidate; with the current transitions every popped entry is valid.
* **Mailboxes** — per-processor :class:`_Mailbox` indexes: a
  ``dict[(src, tag)] -> deque`` FIFO for the concrete fast path (the
  documented send-order matching), plus arrival-ordered heaps, built lazily
  per wildcard pattern, that reproduce the documented "earliest delivered
  candidate" rule for ``ANY``-source/``ANY``-tag receives bit-for-bit.
  Messages consumed through one index are lazily invalidated in the others
  via a live-sequence set.
* **Direct hand-off** — a message arriving for a processor that is already
  blocked on a matching receive is handed to it without touching the
  mailbox (while blocked, the mailbox can contain no matching message, so
  the newcomer is always the unique earliest candidate).
* **Routing** — hop counts come from per-source rows cached on the
  topology (:meth:`Topology.hop_row`), so a send costs one list index
  instead of a validated shortest-path recomputation.

The retained pre-optimisation engine
(:class:`repro.machine._reference.ReferenceMachine`) is the oracle:
``tests/machine/test_equivalence.py`` asserts both engines produce
identical values, stats, makespans and traces.

Fault injection (the ``faults`` hook)
-------------------------------------

``Machine(..., faults=injector)`` plugs a deterministic fault model into
the engine through a narrow structural protocol (implemented by
:class:`repro.faults.FaultInjector`; any object with the same methods
works)::

    injector.begin_run(nprocs)                  # reset per-run state
    injector.crash_time(pid) -> float | None    # virtual time pid dies
    injector.compute_factor(pid) -> float       # node slowdown multiplier
    injector.link_factor(src, dst) -> float     # wire-time multiplier
    injector.deliveries(src, dst, tag, nbytes, seq)
        -> tuple[(extra_delay, corrupt), ...]   # () = dropped,
                                                # 2 entries = duplicated
    injector.corrupt_payload(payload) -> Any    # corruption transform

With ``faults=None`` (the default) the engine takes the exact pre-fault
code paths — the equivalence suite proves the fault-free run stays
bit-for-bit identical to the reference engine.  With faults enabled the
run additionally records ``drop``/``timeout``/``crash`` trace events,
counts drops/timeouts/retransmits in :class:`ProcStats`, drops messages
addressed to crashed processors instead of raising, skips the
unconsumed-mailbox check (stray retransmit duplicates are expected under
chaos), and reports crashed pids in :attr:`RunResult.crashed`.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.errors import DeadlockError, MachineError
from repro.machine.cost import MachineSpec, estimate_nbytes, PERFECT
from repro.machine.events import ANY, Compute, Message, Recv, Send
from repro.machine.topology import FullyConnected, Topology
from repro.machine.trace import Span, Trace

__all__ = ["Machine", "ProcEnv", "ProcStats", "RunResult"]

Program = Callable[["ProcEnv"], Generator[Any, Any, Any]]

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"
_CRASHED = "crashed"


@dataclasses.dataclass(slots=True)
class ProcStats:
    """Per-processor accounting accumulated during a run."""

    pid: int
    compute_seconds: float = 0.0
    overhead_seconds: float = 0.0
    idle_seconds: float = 0.0
    msgs_sent: int = 0
    msgs_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    finish_time: float = 0.0
    #: Fault-layer counters — all provably zero in fault-free runs
    #: (retransmits/timeouts need Send.is_retransmit / Recv.timeout, which
    #: only the resilience layer issues; drops need an injector).
    retransmits: int = 0
    timeouts: int = 0
    msgs_dropped: int = 0

    @property
    def busy_seconds(self) -> float:
        """Compute plus messaging-overhead time."""
        return self.compute_seconds + self.overhead_seconds


@dataclasses.dataclass
class RunResult:
    """Outcome of a :meth:`Machine.run`: values, timing, traffic."""

    values: list[Any]
    stats: list[ProcStats]
    trace: Trace | None = None
    #: Number of simulation requests (computes + sends + receives) the
    #: engine processed — the event count behind host-throughput metrics.
    events: int = 0
    #: Pids that crashed during the run (sorted).  Crashed processors have
    #: ``None`` in :attr:`values` and a ``finish_time`` equal to the time
    #: of death.  Always empty without a fault injector.
    crashed: list[int] = dataclasses.field(default_factory=list)

    @property
    def nprocs(self) -> int:
        return len(self.stats)

    @property
    def survivors(self) -> list[int]:
        """Pids that did *not* crash during the run."""
        dead = set(self.crashed)
        return [s.pid for s in self.stats if s.pid not in dead]

    @property
    def total_retransmits(self) -> int:
        return sum(s.retransmits for s in self.stats)

    @property
    def total_timeouts(self) -> int:
        return sum(s.timeouts for s in self.stats)

    @property
    def total_dropped(self) -> int:
        return sum(s.msgs_dropped for s in self.stats)

    @property
    def makespan(self) -> float:
        """Virtual time at which the last processor finished."""
        return max((s.finish_time for s in self.stats), default=0.0)

    @property
    def total_messages(self) -> int:
        return sum(s.msgs_sent for s in self.stats)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    @property
    def total_compute_seconds(self) -> float:
        return sum(s.compute_seconds for s in self.stats)

    @property
    def total_idle_seconds(self) -> float:
        return sum(s.idle_seconds for s in self.stats)

    def efficiency(self) -> float:
        """Mean fraction of the makespan each processor spent busy."""
        if self.makespan == 0:
            return 1.0
        return sum(s.busy_seconds for s in self.stats) / (self.nprocs * self.makespan)

    def summary(self) -> str:
        """Human-readable one-paragraph run summary."""
        return (
            f"{self.nprocs} procs, makespan {self.makespan:.6f}s, "
            f"{self.total_messages} msgs / {self.total_bytes} bytes, "
            f"efficiency {self.efficiency():.1%}"
        )


class _SpanScope:
    """Context manager pushing one :class:`Span` frame for one processor."""

    __slots__ = ("_spans", "_pid", "_label", "_instr", "_iter", "_saved")

    def __init__(self, spans: list, pid: int, label: str,
                 instr: int | None, iteration: int | None):
        self._spans = spans
        self._pid = pid
        self._label = label
        self._instr = instr
        self._iter = iteration

    def __enter__(self) -> Span:
        spans, pid = self._spans, self._pid
        parent = spans[pid]
        self._saved = parent
        span = Span(self._label, self._instr, self._iter, parent)
        spans[pid] = span
        return span

    def __exit__(self, *exc: Any) -> None:
        self._spans[self._pid] = self._saved


class _NullSpanScope:
    """Shared no-op scope returned when tracing is off (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN_SCOPE = _NullSpanScope()


class ProcEnv:
    """Handle given to each virtual-processor program.

    Exposes the processor id, machine spec and topology, and constructors
    for the three primitive simulation requests.  All methods build request
    objects — the program must ``yield`` them to take effect.
    """

    def __init__(self, machine: "Machine", pid: int):
        self._machine = machine
        self.pid = pid
        self._flop_time = machine.spec.flop_time

    @property
    def nprocs(self) -> int:
        """Total number of processors in the machine."""
        return self._machine.nprocs

    @property
    def spec(self) -> MachineSpec:
        """The machine's cost model."""
        return self._machine.spec

    @property
    def topology(self) -> Topology:
        """The machine's interconnect."""
        return self._machine.topology

    @property
    def now(self) -> float:
        """This processor's current virtual clock."""
        return self._machine._clock[self.pid]

    def compute(self, seconds: float) -> Compute:
        """Request: charge ``seconds`` of CPU time."""
        return Compute(float(seconds))

    def work(self, ops: float) -> Compute:
        """Request: charge CPU time for ``ops`` elementary operations."""
        # Inlined ``spec.compute_time`` (identical arithmetic and error).
        # ``float()`` demotes NumPy scalars to the identical IEEE double;
        # otherwise one np.float64 turns every downstream clock comparison
        # and heap operation into slow NumPy scalar arithmetic.
        ops = float(ops)
        if ops < 0:
            raise MachineError(f"ops must be non-negative, got {ops}")
        return Compute(ops * self._flop_time)

    def send(self, dst: int, payload: Any, *, tag: int = 0,
             nbytes: int | None = None, is_retransmit: bool = False) -> Send:
        """Request: asynchronously send ``payload`` to processor ``dst``."""
        return Send(dst, payload, tag, nbytes, is_retransmit)

    def recv(self, src: int | Any = ANY, *, tag: int | Any = ANY,
             timeout: float | None = None) -> Recv:
        """Request: block until a message matching ``(src, tag)`` arrives.

        With ``timeout`` (virtual seconds) the receive resumes with ``None``
        if nothing matching arrives by the deadline.
        """
        return Recv(src, tag, timeout)

    @property
    def tracing(self) -> bool:
        """True when this run records a trace (so spans are being kept)."""
        return self._machine._span is not None

    def span(self, label: str, *, instr: int | None = None,
             iteration: int | None = None):
        """Context manager attributing trace events to a named span.

        Everything this processor records while the scope is active —
        including receives completed for it by a remote send — carries a
        :class:`~repro.machine.trace.Span` frame with this label (nested
        scopes chain via ``parent``).  When the run records no trace the
        returned scope is a shared no-op, so instrumented programs cost
        nothing un-traced::

            with env.span("scatter"):
                local = yield from collectives.scatter(comm, blocks, root=0)
        """
        spans = self._machine._span
        if spans is None:
            return _NULL_SPAN_SCOPE
        return _SpanScope(spans, self.pid, label, instr, iteration)

    @property
    def crashed_pids(self) -> frozenset[int]:
        """Pids known to have crashed so far (empty without faults)."""
        dead = self._machine._crashed
        return frozenset(dead) if dead else frozenset()

    def __repr__(self) -> str:
        return f"ProcEnv(pid={self.pid}, nprocs={self.nprocs})"


class _Mailbox:
    """Indexed pending-message store for one processor.

    Messages live in per-``(src, tag)`` FIFO deques — the concrete-receive
    fast path, matching in send order exactly as documented.  Wildcard
    receives need the *earliest delivered* candidate (min ``(arrival,
    seq)``), which send order does not give (a small message can overtake a
    big one), so arrival-ordered heaps are kept per wildcard pattern: one
    for ``(ANY, ANY)``, one per concrete source for ``(src, ANY)``, one per
    concrete tag for ``(ANY, tag)``.  Each heap is built on the first
    receive that needs it and maintained incrementally afterwards.

    A message consumed through one index stays in the others; ``live``
    (the set of pending sequence numbers) lazily invalidates those stale
    entries when they surface.
    """

    __slots__ = ("fifo", "live", "count", "heaped", "any_heap", "src_heaps",
                 "tag_heaps")

    def __init__(self) -> None:
        self.fifo: dict[tuple[Any, Any], deque[Message]] = {}
        self.live: set[int] = set()
        self.count = 0
        #: True once any wildcard heap exists; lets ``add`` skip the
        #: heap-maintenance checks entirely for concrete-only mailboxes.
        self.heaped = False
        self.any_heap: list[tuple[float, int, Message]] | None = None
        self.src_heaps: dict[Any, list[tuple[float, int, Message]]] = {}
        self.tag_heaps: dict[Any, list[tuple[float, int, Message]]] = {}

    def add(self, msg: Message) -> None:
        key = (msg.src, msg.tag)
        d = self.fifo.get(key)
        if d is None:
            d = self.fifo[key] = deque()
        d.append(msg)
        self.live.add(msg.seq)
        self.count += 1
        if self.heaped:
            entry = (msg.arrival, msg.seq, msg)
            if self.any_heap is not None:
                heappush(self.any_heap, entry)
            if self.src_heaps:
                h = self.src_heaps.get(msg.src)
                if h is not None:
                    heappush(h, entry)
            if self.tag_heaps:
                h = self.tag_heaps.get(msg.tag)
                if h is not None:
                    heappush(h, entry)

    def _build_heap(self, pred: Callable[[Message], bool]
                    ) -> list[tuple[float, int, Message]]:
        live = self.live
        heap = [(m.arrival, m.seq, m)
                for d in self.fifo.values() for m in d
                if m.seq in live and pred(m)]
        heapify(heap)
        return heap

    def _pop_heap(self, heap: list[tuple[float, int, Message]]) -> Message | None:
        live = self.live
        while heap:
            _, seq, msg = heappop(heap)
            if seq in live:
                live.remove(seq)
                self.count -= 1
                return msg
        return None

    def pop_match(self, recv: Recv) -> Message | None:
        """Remove and return the message ``recv`` matches, if any.

        Concrete ``(src, tag)``: FIFO in send order.  Any wildcard: the
        earliest-delivered candidate, i.e. min ``(arrival, seq)`` — the
        exact selection rule of the reference engine.
        """
        src, tag = recv.src, recv.tag
        if src is not ANY and tag is not ANY:
            d = self.fifo.get((src, tag))
            if not d:
                return None
            live = self.live
            while d:
                msg = d.popleft()
                if msg.seq in live:
                    live.remove(msg.seq)
                    self.count -= 1
                    return msg
            return None
        self.heaped = True
        if src is not ANY:
            h = self.src_heaps.get(src)
            if h is None:
                h = self.src_heaps[src] = self._build_heap(lambda m: m.src == src)
            return self._pop_heap(h)
        if tag is not ANY:
            h = self.tag_heaps.get(tag)
            if h is None:
                h = self.tag_heaps[tag] = self._build_heap(lambda m: m.tag == tag)
            return self._pop_heap(h)
        h = self.any_heap
        if h is None:
            h = self.any_heap = self._build_heap(lambda m: True)
        return self._pop_heap(h)


class _Proc:
    """Internal per-processor simulator state."""

    __slots__ = ("pid", "gen", "status", "pending_recv", "resume_value",
                 "recv_posted_at", "timeout_at", "box", "value")

    def __init__(self, pid: int, gen: Generator[Any, Any, Any]):
        self.pid = pid
        self.gen = gen
        self.status = _READY
        self.pending_recv: Recv | None = None
        self.resume_value: Any = None
        self.recv_posted_at = 0.0
        self.timeout_at: float | None = None
        self.box = _Mailbox()
        self.value: Any = None


class Machine:
    """A simulated distributed-memory machine (see module docstring)."""

    def __init__(self, topology: Topology | int, *,
                 spec: MachineSpec = PERFECT, record_trace: bool = False,
                 single_port: bool = False, faults: Any = None,
                 trace_sink: Any = None, trace_limit: int | None = None,
                 batch: bool = True):
        if isinstance(topology, int):
            topology = FullyConnected(topology)
        if not isinstance(topology, Topology):
            raise MachineError(
                f"topology must be a Topology or int, got {type(topology).__name__}")
        self.topology = topology
        self.spec = spec
        #: Streaming trace sink (``emit(event)``/``close()``; see
        #: :mod:`repro.obs.sinks`) and in-memory ring-buffer bound.
        #: Supplying either implies ``record_trace=True``.
        self.trace_sink = trace_sink
        self.trace_limit = trace_limit
        self.record_trace = (record_trace or trace_sink is not None
                             or trace_limit is not None)
        #: Per-pid span-context stack tops for the current traced run
        #: (``None`` outside traced runs — the ``env.span`` fast-path guard).
        self._span: list[Span | None] | None = None
        #: Deterministic fault injector (see module docstring), or ``None``
        #: for the perfect machine.  ``None`` keeps the fault-free fast
        #: path bit-for-bit identical to the reference engine.
        self.faults = faults
        #: Single-port (full-duplex) contention model: each processor's
        #: network port transmits at most one message at a time, and
        #: receives at most one at a time.  Port reservations are made in
        #: the simulator's (causal) global processing order.  Off by
        #: default: the base model is contention-free Hockney.
        self.single_port = single_port
        #: Batched drive-order engine (:mod:`repro.machine.batch`) for
        #: fault-free, untraced, multi-port runs.  It produces bit-identical
        #: results and transparently falls back to the per-event engine;
        #: ``batch=False`` forces the per-event engine (the equivalence
        #: suite uses this to compare the two directly).
        self.batch = batch
        self._clock: list[float] = []
        self._tx_free: list[float] = []
        self._rx_free: list[float] = []
        #: Pids crashed so far in the current run; ``None`` until a faulty
        #: run starts (so truthiness tests stay cheap on the fast path).
        self._crashed: set[int] | None = None

    @property
    def nprocs(self) -> int:
        """Number of virtual processors."""
        return self.topology.size

    def run(self, program: Program | Sequence[Program], *,
            args: Iterable[tuple] | None = None) -> RunResult:
        """Execute one program per processor and return the result.

        ``program`` is either a single program (SPMD: every processor runs
        it, distinguished by ``env.pid``) or a sequence of ``nprocs``
        programs (MPMD).  ``args`` optionally supplies extra positional
        arguments per processor.
        """
        n = self.nprocs
        if callable(program):
            programs: list[Program] = [program] * n
        else:
            programs = list(program)
            if len(programs) != n:
                raise MachineError(
                    f"expected {n} programs, got {len(programs)}")
        extra = [()] * n if args is None else [tuple(a) for a in args]
        if len(extra) != n:
            raise MachineError(f"expected {n} arg tuples, got {len(extra)}")

        if (self.batch and self.faults is None and not self.record_trace
                and not self.single_port):
            from repro.machine.batch import BatchFallback, run_batched
            try:
                return run_batched(self, programs, extra)
            except BatchFallback:
                pass  # per-event oracle handles what batching cannot
        return self._run_events(programs, extra)

    def _run_events(self, programs: list[Program],
                    extra: list[tuple]) -> RunResult:
        """The per-event engine: one heap-pop per request (see module
        docstring).  The oracle for the batched engine, and the only path
        supporting traces, faults and the single-port contention model."""
        n = self.nprocs
        self._clock = [0.0] * n
        self._tx_free = [0.0] * n
        self._rx_free = [0.0] * n
        trace = (Trace(sink=self.trace_sink, max_events=self.trace_limit)
                 if self.record_trace else None)
        if trace is None:
            self._span = None
            trace_record = None
        else:
            # Span-tagged recording: one closure layer, one list index per
            # event — paid only on traced runs (untraced hot path unchanged).
            spans: list[Span | None] = [None] * n
            self._span = spans
            raw_record = trace.record

            def trace_record(pid: int, kind: str, start: float, end: float,
                             **detail: Any) -> None:
                raw_record(pid, kind, start, end, span=spans[pid], **detail)
        stats = [ProcStats(pid=p) for p in range(n)]
        procs = []
        for pid in range(n):
            env = ProcEnv(self, pid)
            gen = programs[pid](env, *extra[pid])
            if not isinstance(gen, Generator):
                raise MachineError(
                    f"program for pid {pid} must be a generator function "
                    f"(did you forget to yield?); got {type(gen).__name__}")
            procs.append(_Proc(pid, gen))

        # Hot-loop locals: attribute lookups cost more than the arithmetic
        # they feed at this event rate.
        clock = self._clock
        tx_free = self._tx_free
        rx_free = self._rx_free
        topology = self.topology
        spec = self.spec
        send_ovh = spec.send_overhead
        recv_ovh = spec.recv_overhead
        latency = spec.latency
        per_hop = spec.per_hop_latency
        bandwidth = spec.bandwidth
        word_bytes = spec.word_bytes
        single_port = self.single_port
        hop_rows: list[list[int] | None] = [None] * n

        # Fault-model setup.  ``faults is None`` (the default) must leave
        # every hot-path branch below untaken; ``crashes``/``compute_factors``
        # additionally stay None when the injector models no crash/slowdown,
        # so those per-event checks cost a single identity test.
        faults = self.faults
        crashes: list[float | None] | None = None
        compute_factors: list[float] | None = None
        self._crashed = None
        if faults is not None:
            faults.begin_run(n)
            self._crashed = set()
            ct_list = [faults.crash_time(pid) for pid in range(n)]
            if any(ct is not None for ct in ct_list):
                crashes = ct_list
            cf_list = [faults.compute_factor(pid) for pid in range(n)]
            if any(f != 1.0 for f in cf_list):
                compute_factors = cf_list
        crashed_set = self._crashed

        send_seq = 0
        alive = n
        events = 0
        # One (clock, pid) entry per ready processor; blocked/done have none.
        # Crash times get their own wake-up entries so a blocked or idle
        # processor still dies on schedule.
        heap: list[tuple[float, int]] = [(0.0, pid) for pid in range(n)]
        if crashes is not None:
            for cpid, ct in enumerate(crashes):
                if ct is not None:
                    heap.append((ct, cpid))
            heapify(heap)

        def complete_recv(proc: _Proc, st: ProcStats, msg: Message) -> None:
            """Finish ``proc``'s pending receive with ``msg`` and requeue it."""
            pid = proc.pid
            wait_start = proc.recv_posted_at
            arrival = msg.arrival
            ready_at = arrival if arrival > wait_start else wait_start
            st.idle_seconds += ready_at - wait_start
            t = ready_at + recv_ovh
            clock[pid] = t
            st.overhead_seconds += recv_ovh
            st.msgs_received += 1
            st.bytes_received += msg.nbytes
            if trace_record is not None:
                trace_record(pid, "recv", wait_start, t,
                             src=msg.src, tag=msg.tag, nbytes=msg.nbytes)
            proc.status = _READY
            proc.pending_recv = None
            proc.timeout_at = None
            proc.resume_value = msg
            heappush(heap, (t, pid))

        def kill(proc: _Proc, at: float) -> None:
            """Crash ``proc`` at virtual time ``at``: permanent node death."""
            nonlocal alive
            dead_pid = proc.pid
            try:
                proc.gen.close()
            except RuntimeError:
                pass
            proc.status = _CRASHED
            proc.pending_recv = None
            proc.timeout_at = None
            proc.box = _Mailbox()  # in-flight/pending messages die with it
            proc.value = None
            clock[dead_pid] = at
            stats[dead_pid].finish_time = at
            crashed_set.add(dead_pid)
            alive -= 1
            if trace_record is not None:
                trace_record(dead_pid, "crash", at, at)

        while alive > 0:
            while True:
                if not heap:
                    blocked = [p.pid for p in procs if p.status == _BLOCKED]
                    msg_text = (
                        f"deadlock: processors {blocked} blocked on receives "
                        f"that can never be satisfied")
                    if crashed_set:
                        msg_text += (f" (crashed processors: "
                                     f"{sorted(crashed_set)}; use recv "
                                     f"timeouts or the resilience layer)")
                    raise DeadlockError(msg_text)
                t, pid = heappop(heap)
                proc = procs[pid]
                status = proc.status
                if crashes is not None:
                    ct = crashes[pid]
                    if (ct is not None and t >= ct
                            and status != _DONE and status != _CRASHED):
                        # The crash wake-up (or any later entry) for a
                        # processor past its death time: kill it exactly at
                        # the modelled crash instant.
                        kill(proc, ct)
                        if alive == 0:
                            # The last live processor died here; scanning the
                            # remaining (stale) entries would misreport the
                            # drained heap as a deadlock.
                            break
                        continue
                # Lazy invalidation guard; without faults every entry is
                # valid under the current transition rules (see module
                # docstring).
                if status == _READY and clock[pid] == t:
                    break
                if status == _BLOCKED and proc.timeout_at == t:
                    # Timed-out receive: resume the generator with None.
                    recv = proc.pending_recv
                    st = stats[pid]
                    st.idle_seconds += t - proc.recv_posted_at
                    st.timeouts += 1
                    clock[pid] = t
                    if trace_record is not None:
                        trace_record(pid, "timeout", proc.recv_posted_at, t,
                                     src=recv.src, tag=recv.tag)
                    proc.status = _READY
                    proc.pending_recv = None
                    proc.timeout_at = None
                    proc.resume_value = None
                    break
            if alive == 0:
                break
            st = stats[pid]
            gen_send = proc.gen.send
            while True:
                if crashes is not None:
                    ct = crashes[pid]
                    if ct is not None and clock[pid] >= ct:
                        # The clock ran past the death time while this
                        # processor was being driven: it dies at the
                        # modelled instant, before issuing its next request.
                        kill(proc, ct)
                        break
                try:
                    request = gen_send(proc.resume_value)
                except StopIteration as stop:
                    proc.status = _DONE
                    proc.value = stop.value
                    st.finish_time = clock[pid]
                    alive -= 1
                    if proc.box.count and faults is None:
                        # Under faults, leftover retransmit duplicates and
                        # messages racing a crash are expected — only the
                        # perfect machine treats them as a program bug.
                        raise MachineError(
                            f"processor {pid} finished with {proc.box.count} "
                            f"unconsumed messages in its mailbox")
                    break
                proc.resume_value = None
                events += 1

                cls = request.__class__
                if cls is not Compute and cls is not Send and cls is not Recv:
                    # Normalise subclasses onto the exact-type dispatch below.
                    if isinstance(request, Compute):
                        cls = Compute
                    elif isinstance(request, Send):
                        cls = Send
                    elif isinstance(request, Recv):
                        cls = Recv
                    else:
                        raise MachineError(
                            f"processor {pid} yielded {request!r}; expected "
                            f"Compute, Send or Recv (use `yield from` for collectives)")

                if cls is Compute:
                    seconds = request.seconds
                    if seconds.__class__ is not float:
                        # Same IEEE double; keeps clocks/heap keys C floats.
                        seconds = float(seconds)
                    if compute_factors is not None:
                        seconds *= compute_factors[pid]
                    start = clock[pid]
                    t = start + seconds
                    clock[pid] = t
                    st.compute_seconds += seconds
                    if trace_record is not None:
                        trace_record(pid, "compute", start, t)
                elif cls is Send:
                    dst = request.dst
                    if dst.__class__ is not int or not 0 <= dst < n:
                        topology.check_node(dst)
                    if dst == pid:
                        raise MachineError(f"processor {pid} sent a message to itself")
                    nb = request.nbytes
                    nbytes = (estimate_nbytes(request.payload, word_bytes)
                              if nb is None else int(nb))
                    start = clock[pid]
                    t = start + send_ovh
                    clock[pid] = t
                    st.overhead_seconds += send_ovh
                    row = hop_rows[pid]
                    if row is None:
                        row = hop_rows[pid] = topology.hop_row(pid)
                    hops = row[dst]
                    if hops < 1:
                        hops = 1
                    if faults is None:
                        if single_port:
                            wire = nbytes / bandwidth
                            startup = latency + per_hop * (hops - 1)
                            txf = tx_free[pid]
                            tx_start = t if t > txf else txf
                            tx_free[pid] = tx_start + wire
                            a0 = tx_start + startup
                            rxf = rx_free[dst]
                            arrival = (a0 if a0 > rxf else rxf) + wire
                            rx_free[dst] = arrival
                        else:
                            if nbytes < 0:
                                raise MachineError(
                                    f"nbytes must be non-negative, got {nbytes}")
                            arrival = t + (latency + per_hop * (hops - 1)
                                           + nbytes / bandwidth)
                        send_seq += 1
                        tag = request.tag
                        msg = Message(pid, dst, tag, request.payload, nbytes,
                                      start, arrival, send_seq)
                        st.msgs_sent += 1
                        st.bytes_sent += nbytes
                        if request.is_retransmit:
                            st.retransmits += 1
                            if trace_record is not None:
                                trace_record(pid, "retransmit", start, t,
                                             dst=dst, tag=tag, nbytes=nbytes)
                        elif trace_record is not None:
                            trace_record(pid, "send", start, t,
                                         dst=dst, tag=tag, nbytes=nbytes)
                        dproc = procs[dst]
                        dstatus = dproc.status
                        if dstatus == _DONE:
                            raise MachineError(
                                f"message {msg!r} sent to already-finished processor {dst}")
                        recv = dproc.pending_recv
                        if (dstatus == _BLOCKED and recv is not None
                                and (recv.src is ANY or recv.src == pid)
                                and (recv.tag is ANY or recv.tag == tag)):
                            # Direct hand-off: a blocked processor's mailbox holds no
                            # matching message (it would have unblocked already), so
                            # the newcomer is the unique earliest candidate.
                            complete_recv(dproc, stats[dst], msg)
                        else:
                            dproc.box.add(msg)
                    else:
                        # Fault-injection send path: the injector decides
                        # which copies of the message (if any) reach dst,
                        # how late they are, and whether they are corrupted.
                        # With an all-zero-rate injector the arithmetic below
                        # is bit-identical to the fault-free branch
                        # (``x * 1.0 == x`` and ``x + 0.0 == x`` for the
                        # non-negative times involved).
                        tag = request.tag
                        rtx = request.is_retransmit
                        st.msgs_sent += 1
                        st.bytes_sent += nbytes
                        if rtx:
                            st.retransmits += 1
                        if trace_record is not None:
                            trace_record(pid, "retransmit" if rtx else "send",
                                         start, t, dst=dst, tag=tag,
                                         nbytes=nbytes)
                        dproc = procs[dst]
                        dstatus = dproc.status
                        # Every wire attempt consumes a sequence number,
                        # delivered or not: the injector's decisions hash
                        # the sequence, so a retransmission must present a
                        # *fresh* seq or it would inherit the original's
                        # drop verdict forever.
                        send_seq += 1
                        if dstatus == _CRASHED or dstatus == _DONE:
                            # The peer is gone: the network quietly eats the
                            # message.  The resilience layer notices dead
                            # peers through timeouts, not through errors.
                            st.msgs_dropped += 1
                            if trace_record is not None:
                                trace_record(pid, "drop", t, t, dst=dst,
                                             tag=tag, nbytes=nbytes,
                                             reason="peer-gone")
                        else:
                            outcomes = faults.deliveries(pid, dst, tag,
                                                         nbytes, send_seq)
                            if not outcomes:
                                st.msgs_dropped += 1
                                if trace_record is not None:
                                    trace_record(pid, "drop", t, t, dst=dst,
                                                 tag=tag, nbytes=nbytes,
                                                 reason="injected")
                            else:
                                wire_factor = faults.link_factor(pid, dst)
                                if single_port:
                                    wire = nbytes / bandwidth * wire_factor
                                    startup = latency + per_hop * (hops - 1)
                                    txf = tx_free[pid]
                                    tx_start = t if t > txf else txf
                                    tx_free[pid] = tx_start + wire
                                    a0 = tx_start + startup
                                    rxf = rx_free[dst]
                                    base_arrival = (a0 if a0 > rxf else rxf) + wire
                                    rx_free[dst] = base_arrival
                                else:
                                    if nbytes < 0:
                                        raise MachineError(
                                            f"nbytes must be non-negative, got {nbytes}")
                                    base_arrival = t + (latency + per_hop * (hops - 1)
                                                        + nbytes / bandwidth * wire_factor)
                                first_copy = True
                                for extra_delay, corrupt in outcomes:
                                    payload = request.payload
                                    if corrupt:
                                        payload = faults.corrupt_payload(payload)
                                    if first_copy:
                                        first_copy = False
                                    else:
                                        send_seq += 1  # duplicate copies
                                    arrival = base_arrival + extra_delay
                                    msg = Message(pid, dst, tag, payload,
                                                  nbytes, start, arrival,
                                                  send_seq)
                                    recv = dproc.pending_recv
                                    if (dproc.status == _BLOCKED and recv is not None
                                            and (recv.src is ANY or recv.src == pid)
                                            and (recv.tag is ANY or recv.tag == tag)):
                                        complete_recv(dproc, stats[dst], msg)
                                    else:
                                        dproc.box.add(msg)
                else:  # Recv
                    box = proc.box
                    msg = None
                    if box.count:
                        src = request.src
                        rtag = request.tag
                        if src is not ANY and rtag is not ANY:
                            # Concrete receive: FIFO deque, inlined from
                            # _Mailbox.pop_match (the dominant match kind).
                            d = box.fifo.get((src, rtag))
                            if d:
                                live = box.live
                                while d:
                                    m = d.popleft()
                                    if m.seq in live:
                                        live.remove(m.seq)
                                        box.count -= 1
                                        msg = m
                                        break
                        else:
                            msg = box.pop_match(request)
                    if msg is None:
                        proc.status = _BLOCKED
                        proc.pending_recv = request
                        proc.recv_posted_at = clock[pid]
                        to = request.timeout
                        if to is not None:
                            deadline = clock[pid] + to
                            proc.timeout_at = deadline
                            heappush(heap, (deadline, pid))
                        break
                    # Matching message already delivered: complete the
                    # receive in place (same accounting as complete_recv,
                    # without the transient blocked state or heap traffic).
                    wait_start = clock[pid]
                    arrival = msg.arrival
                    ready_at = arrival if arrival > wait_start else wait_start
                    st.idle_seconds += ready_at - wait_start
                    t = ready_at + recv_ovh
                    clock[pid] = t
                    st.overhead_seconds += recv_ovh
                    st.msgs_received += 1
                    st.bytes_received += msg.nbytes
                    if trace_record is not None:
                        trace_record(pid, "recv", wait_start, t,
                                     src=msg.src, tag=msg.tag, nbytes=msg.nbytes)
                    proc.resume_value = msg
                # The processor stays READY at time ``t`` after a Compute or
                # Send.  If ``(t, pid)`` is still no later than every queued
                # entry, this processor is provably the next to be scheduled
                # (queued keys lower-bound every ready processor's key), so
                # keep driving it and skip the heap round-trip.  Otherwise
                # requeue and reselect.
                if heap and (t, pid) > heap[0]:
                    heappush(heap, (t, pid))
                    break

        return RunResult(values=[p.value for p in procs], stats=stats,
                         trace=trace, events=events,
                         crashed=sorted(crashed_set) if crashed_set else [])
