"""Simulated distributed-memory machine (the paper's AP1000 substitute).

The evaluation in the paper (Table 1, Figure 3) was run on a Fujitsu AP1000
message-passing multicomputer.  We do not have one, so this package provides
a **discrete-event simulator** of a distributed-memory machine:

* :mod:`repro.machine.cost` — machine specifications (latency, bandwidth,
  compute rate) with an AP1000-class preset,
* :mod:`repro.machine.topology` — hypercube / mesh / ring / fully-connected
  interconnects with hop counting,
* :mod:`repro.machine.simulator` — generator-based virtual processors driven
  by an event loop with per-processor virtual clocks,
* :mod:`repro.machine.api` — an MPI-like communicator layer (groups, ranks,
  ``split``) on top of simulator point-to-point messages,
* :mod:`repro.machine.collectives` — broadcast / reduce / scan / gather /
  scatter / allgather / alltoall / barrier implemented with the same
  tree and recursive-doubling message patterns an MPI library would use,
* :mod:`repro.machine.reliable` — ack/retransmit messaging with capped
  exponential backoff for runs with fault injection (``repro.faults``),
* :mod:`repro.machine.collectives_ft` — crash-aware collectives that
  degrade to the surviving group or raise a structured ``FaultError``.

Programs carry *real data* (so results are checkable) while the simulator
charges *virtual time* from the cost model (so the paper's performance shape
is reproducible on one laptop, independent of Python's GIL).
"""

from repro.machine.cost import MachineSpec, AP1000, MODERN_CLUSTER, PERFECT, estimate_nbytes
from repro.machine.topology import (
    Topology,
    Hypercube,
    Ring,
    Mesh2D,
    FullyConnected,
)
from repro.machine.simulator import Machine, ProcEnv, RunResult, ProcStats
from repro.machine.api import Comm
from repro.machine.reliable import ReliableChannel
from repro.machine import (collectives, collectives_ext, collectives_ft,
                           metrics, reliable)

__all__ = [
    "MachineSpec",
    "AP1000",
    "MODERN_CLUSTER",
    "PERFECT",
    "estimate_nbytes",
    "Topology",
    "Hypercube",
    "Ring",
    "Mesh2D",
    "FullyConnected",
    "Machine",
    "ProcEnv",
    "RunResult",
    "ProcStats",
    "Comm",
    "ReliableChannel",
    "collectives",
    "collectives_ext",
    "collectives_ft",
    "metrics",
    "reliable",
]
