"""Alternative collective algorithms — the bandwidth-optimal family.

:mod:`repro.machine.collectives` implements the latency-optimal tree
algorithms.  For large payloads the classic alternatives win, and having
both families lets the repository demonstrate (and test) the crossovers a
real MPI library navigates:

* :func:`reduce_scatter` — ring reduce-scatter: each member ends up with
  one reduced chunk; ``p - 1`` rounds, each moving ``1/p`` of the data,
* :func:`ring_allreduce` — reduce-scatter followed by an allgather ring:
  ``2 (p - 1)`` rounds of ``n/p``-sized messages, total traffic
  ``~2n`` per member independent of ``p`` (vs ``~n log p`` for tree
  reduce+bcast),
* :func:`pipelined_bcast` — the root streams the payload in ``chunks``
  pieces down a ring: ``T ≈ (p - 1 + chunks) · t_chunk``, beating the
  binomial tree when ``n/bandwidth ≫ latency``.

All operate on *lists of chunks* (for reduce-scatter/allreduce, one chunk
per member) or raw payloads (broadcast); chunk combination uses the given
associative operator, applied in rank order.

The second half of the module is the *flat/chain* family the plan
optimizer's collective selection targets (``Collective.algo`` in
:mod:`repro.plan.ir`):

* :func:`flat_bcast` / :func:`flat_reduce` — direct root↔member messages
  (``p - 1`` messages, no intermediate hops: fewer total messages than a
  tree whenever the tree uses internal forwarding),
* :func:`chain_bcast` — ring-order forwarding from the root,
* :func:`chain_scan` — the rank-order prefix chain: ``p - 1`` messages
  against Hillis–Steele's ``Σ (p - 2^k)``, at the price of serial depth.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

from repro.errors import MachineError
from repro.machine.api import Comm
from repro.machine.cost import estimate_nbytes

__all__ = ["reduce_scatter", "ring_allreduce", "pipelined_bcast",
           "smart_bcast", "flat_bcast", "flat_reduce", "chain_bcast",
           "chain_scan"]

Gen = Generator[Any, Any, Any]

_TAG_RS = 1_100_001
_TAG_AG = 1_100_002
_TAG_PB = 1_100_003
_TAG_FB = 1_100_004
_TAG_FR = 1_100_005
_TAG_CB = 1_100_006
_TAG_CS = 1_100_007


def reduce_scatter(comm: Comm, chunks: Sequence[Any],
                   op: Callable[[Any, Any], Any], *,
                   nbytes: int | None = None) -> Gen:
    """Ring reduce-scatter: rank ``r`` ends up with the ``op``-reduction of
    every member's chunk ``(r + 1) mod p``.

    ``chunks`` must have one entry per member.  ``p - 1`` rounds; in round
    ``t`` each rank forwards the partial for chunk ``(rank - t) mod p`` to
    its right neighbour and folds the arriving partial into chunk
    ``(rank - t - 1) mod p``.  Chunk ``c`` accumulates contributions in the
    ring order ``c, c+1, …, c-1 (mod p)``, so ``op`` must be associative
    *and* commutative for results to be independent of the chunk index
    (sums, max, elementwise vector adds — the allreduce workloads).
    """
    size = comm.size
    rank = comm.rank
    if len(chunks) != size:
        raise MachineError(
            f"reduce_scatter needs {size} chunks, got {len(chunks)}")
    if size == 1:
        return chunks[0]
    acc = list(chunks)
    for t in range(size - 1):
        send_idx = (rank - t) % size
        recv_idx = (rank - t - 1) % size
        yield comm.send((rank + 1) % size, acc[send_idx], tag=_TAG_RS,
                        nbytes=nbytes)
        msg = yield comm.recv((rank - 1) % size, tag=_TAG_RS)
        acc[recv_idx] = op(msg.payload, acc[recv_idx])
    return acc[(rank + 1) % size]


def ring_allreduce(comm: Comm, chunks: Sequence[Any],
                   op: Callable[[Any, Any], Any], *,
                   nbytes: int | None = None) -> Gen:
    """Bandwidth-optimal allreduce: reduce-scatter then ring allgather.

    Returns the full list of reduced chunks (rank order) on every member —
    concatenating them gives the allreduced vector.
    """
    size = comm.size
    rank = comm.rank
    mine = yield from reduce_scatter(comm, chunks, op, nbytes=nbytes)
    out: list[Any] = [None] * size
    my_idx = (rank + 1) % size
    out[my_idx] = mine
    current, current_idx = mine, my_idx
    for _t in range(size - 1):
        yield comm.send((rank + 1) % size, (current_idx, current),
                        tag=_TAG_AG, nbytes=nbytes)
        msg = yield comm.recv((rank - 1) % size, tag=_TAG_AG)
        current_idx, current = msg.payload
        out[current_idx] = current
    return out


def pipelined_bcast(comm: Comm, value: Any = None, *, root: int = 0,
                    chunks: int = 4, nbytes: int | None = None) -> Gen:
    """Pipelined ring broadcast: the root streams ``chunks`` pieces.

    The payload is broadcast as an opaque value cut into ``chunks`` cost
    units (the data itself is forwarded whole in the last chunk so callers
    need no reassembly logic); the per-chunk wire size is ``nbytes /
    chunks``.  With ``p`` members the last one finishes after
    ``p - 1 + chunks`` chunk-steps instead of the tree's
    ``log2(p) * full-payload`` steps.
    """
    size = comm.size
    if not (0 <= root < size):
        raise MachineError(f"root {root} out of range for size-{size} comm")
    if chunks <= 0:
        raise MachineError(f"chunks must be positive, got {chunks}")
    if size == 1:
        return value
    rank = comm.rank
    vrank = (rank - root) % size
    total = nbytes if nbytes is not None else (
        estimate_nbytes(value, comm.env.spec.word_bytes) if vrank == 0 else None)
    next_rank = (rank + 1) % size
    prev_rank = (rank - 1) % size
    if vrank == 0:
        per_chunk = max(1, (total or chunks) // chunks)
        for c in range(chunks):
            payload = value if c == chunks - 1 else None
            yield comm.send(next_rank, (c, payload), tag=_TAG_PB,
                            nbytes=per_chunk)
        return value
    result = None
    for c in range(chunks):
        msg = yield comm.recv(prev_rank, tag=_TAG_PB)
        c_in, payload = msg.payload
        if c_in == chunks - 1:
            result = payload
        if (vrank + 1) % size != 0:  # not the last member of the ring
            yield comm.send(next_rank, (c_in, payload), tag=_TAG_PB,
                            nbytes=msg.nbytes)
    return result


def smart_bcast(comm: Comm, value: Any = None, *, root: int = 0,
                nbytes: int | None = None, chunks: int = 8) -> Gen:
    """Broadcast choosing the algorithm from the machine's cost model.

    The paper's portability claim is that skeletons retarget by swapping
    implementations; this collective does it *within* one machine: it
    compares the Hockney-model predictions of the binomial tree
    (``ceil(log2 p)`` full-payload rounds) and the pipelined ring
    (``p - 1 + chunks`` chunk-steps) for the given payload size, and runs
    whichever is cheaper.  The tests verify the choice matches the
    measured winner on both sides of the crossover.
    """
    from repro.machine import collectives as _tree

    size = comm.size
    if size == 1:
        return value
    spec = comm.env.spec
    if nbytes is None:
        nbytes = estimate_nbytes(value, spec.word_bytes) if comm.rank == root else None
        # every member must pick the same algorithm: share the size first
        nbytes = yield from _tree.bcast(comm, nbytes, root=root,
                                        nbytes=spec.word_bytes)
    rounds = (size - 1).bit_length()
    t_msg_full = spec.latency + spec.send_overhead + spec.recv_overhead \
        + nbytes / spec.bandwidth
    t_tree = rounds * t_msg_full
    per_chunk = max(nbytes // chunks, 1)
    t_chunk = spec.latency + spec.send_overhead + spec.recv_overhead \
        + per_chunk / spec.bandwidth
    t_pipe = (size - 1 + chunks) * t_chunk
    if t_tree <= t_pipe:
        result = yield from _tree.bcast(comm, value, root=root, nbytes=nbytes)
        return result
    result = yield from pipelined_bcast(comm, value, root=root,
                                        chunks=chunks, nbytes=nbytes)
    return result


def flat_bcast(comm: Comm, value: Any = None, *, root: int = 0,
               nbytes: int | None = None) -> Gen:
    """Flat (linear) broadcast: the root sends to every member directly.

    ``p - 1`` messages with no forwarding — the same total as the binomial
    tree, but every message leaves the root, trading fan-out serialisation
    for single-hop routes.  The plan optimizer selects it when the cost
    model says root-adjacency beats log-depth (e.g. a star-like reach on a
    fully connected topology with cheap sends).
    """
    size = comm.size
    if not (0 <= root < size):
        raise MachineError(f"root {root} out of range for size-{size} comm")
    if size == 1:
        return value
    if comm.rank == root:
        for dst in range(size):
            if dst != root:
                yield comm.send(dst, value, tag=_TAG_FB, nbytes=nbytes)
        return value
    msg = yield comm.recv(root, tag=_TAG_FB)
    return msg.payload


def flat_reduce(comm: Comm, value: Any, op: Callable[[Any, Any], Any], *,
                root: int = 0, nbytes: int | None = None) -> Gen:
    """Flat reduction: every member sends directly to the root.

    The root folds contributions in **rank order** (its own value taking
    its rank position), so associativity of ``op`` suffices — the same
    contract as the tree :func:`repro.machine.collectives.reduce`.
    Non-root members return ``None``.
    """
    size = comm.size
    if not (0 <= root < size):
        raise MachineError(f"root {root} out of range for size-{size} comm")
    if size == 1:
        return value
    if comm.rank != root:
        yield comm.send(root, value, tag=_TAG_FR, nbytes=nbytes)
        return None
    acc = None
    for src in range(size):
        if src == root:
            part = value
        else:
            msg = yield comm.recv(src, tag=_TAG_FR)
            part = msg.payload
        acc = part if src == 0 else op(acc, part)
    return acc


def chain_bcast(comm: Comm, value: Any = None, *, root: int = 0,
                nbytes: int | None = None) -> Gen:
    """Ring-order forwarding broadcast: the root starts a chain.

    ``p - 1`` single-hop messages around the ring — on a :class:`Ring`
    topology every hop is a neighbour link, where the binomial tree's long
    jumps pay per-hop latency.
    """
    size = comm.size
    if not (0 <= root < size):
        raise MachineError(f"root {root} out of range for size-{size} comm")
    if size == 1:
        return value
    rank = comm.rank
    v = (rank - root) % size
    if v == 0:
        yield comm.send((rank + 1) % size, value, tag=_TAG_CB, nbytes=nbytes)
        return value
    msg = yield comm.recv((rank - 1) % size, tag=_TAG_CB)
    if v + 1 < size:
        yield comm.send((rank + 1) % size, msg.payload, tag=_TAG_CB,
                        nbytes=nbytes)
    return msg.payload


def chain_scan(comm: Comm, value: Any, op: Callable[[Any, Any], Any], *,
               nbytes: int | None = None) -> Gen:
    """Inclusive prefix reduction as a rank-order chain.

    Rank ``r`` receives the prefix of ranks ``0..r-1`` from its left
    neighbour, folds its own value (rank order, associativity suffices)
    and forwards.  ``p - 1`` messages total versus Hillis–Steele's
    ``Σ_k (p - 2^k)`` — the optimizer's pick when message count dominates
    (it costs serial depth, so only when the model says rounds are cheap).
    """
    size = comm.size
    rank = comm.rank
    my = value
    if rank > 0:
        msg = yield comm.recv(rank - 1, tag=_TAG_CS)
        my = op(msg.payload, my)
    if rank + 1 < size:
        yield comm.send(rank + 1, my, tag=_TAG_CS, nbytes=nbytes)
    return my
