"""MPI-like communicators over the simulator.

A :class:`Comm` names an ordered group of virtual processors and gives each
member a group-relative *rank*.  All point-to-point and collective traffic
inside the group is addressed by rank, so the same program text runs
unchanged on any subgroup — which is exactly how the paper maps nested
``ParArray`` groups onto "the concept of a group in MPI" (§2.1).

``Comm.split`` derives sub-communicators from a colouring function of the
rank.  Because every member computes the same deterministic colouring, no
communication is needed (unlike ``MPI_Comm_split``, which must exchange
colours; the simulator's communicators are a modelling convenience, not a
wire protocol).

Communicator construction sits on the simulator's hot path (nested
skeletons build one per recursion level per processor), so the class keeps
two internal fast paths: groups whose members form a contiguous ascending
pid range (the world communicator and every ``subgroup(range(...))`` of
one) do all rank arithmetic in O(1) without any lookup table, and member
lists derived from an already-validated communicator skip re-validation.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import MachineError
from repro.machine.events import ANY, Recv, Send
from repro.machine.simulator import ProcEnv

__all__ = ["Comm"]


class Comm:
    """An ordered processor group with rank-relative messaging.

    Attributes ``rank`` (this processor's position in the group) and
    ``size`` (member count) are plain attributes, set at construction.
    """

    __slots__ = ("env", "members", "size", "rank", "_contig_base",
                 "_rank_table")

    def __init__(self, env: ProcEnv, members: Sequence[int] | None = None, *,
                 _trusted: bool = False, _contig_base: int | None = None):
        self.env = env
        if members is None:
            # World group: members are 0..nprocs-1 by construction.
            n = env.nprocs
            self.members: tuple[int, ...] = tuple(range(n))
            self.size = n
            self.rank = env.pid
            self._contig_base: int | None = 0
            self._rank_table: dict[int, int] | None = None
            return
        mm = self.members = tuple(members)
        self.size = len(mm)
        self._contig_base = _contig_base
        self._rank_table = None
        if not _trusted:
            if len(set(mm)) != len(mm):
                raise MachineError(f"duplicate members in communicator: {mm}")
            n = env.nprocs
            if not all(type(pid) is int and 0 <= pid < n for pid in mm):
                # Re-validate one by one for the precise error message.
                for pid in mm:
                    env.topology.check_node(pid)
        if _contig_base is not None:
            rank = env.pid - _contig_base
            if not 0 <= rank < self.size:
                raise MachineError(
                    f"processor {env.pid} is not a member of communicator {mm}")
        else:
            try:
                rank = mm.index(env.pid)
            except ValueError:
                raise MachineError(
                    f"processor {env.pid} is not a member of communicator "
                    f"{mm}") from None
        self.rank = rank

    @classmethod
    def world(cls, env: ProcEnv) -> "Comm":
        """The communicator containing every processor of the machine."""
        return cls(env)

    def pid_of(self, rank: int) -> int:
        """Global processor id of a group rank."""
        if not (0 <= rank < self.size):
            raise MachineError(f"rank {rank} out of range for size-{self.size} comm")
        return self.members[rank]

    def send(self, dst_rank: int, payload: Any, *, tag: int = 0,
             nbytes: int | None = None) -> Send:
        """Request: send ``payload`` to the member with rank ``dst_rank``.

        Raises :class:`MachineError` naming this group when ``dst_rank``
        is out of range or the member's processor has crashed — rather
        than letting the raw simulator error (or a silent under-faults
        drop) surface from a rank-level program.
        """
        # Inlined ``pid_of`` + ``env.send`` (identical checks and result).
        if not (0 <= dst_rank < self.size):
            raise MachineError(
                f"rank {dst_rank} out of range for size-{self.size} comm "
                f"(members {self.members})")
        dst = self.members[dst_rank]
        dead = self.env._machine._crashed
        if dead and dst in dead:
            raise MachineError(
                f"rank {dst_rank} (pid {dst}) of size-{self.size} comm "
                f"(members {self.members}) has crashed; use "
                f"repro.machine.reliable / collectives_ft for "
                f"fault-tolerant messaging")
        return Send(dst, payload, tag, nbytes)

    def recv(self, src_rank: int | Any = ANY, *, tag: int | Any = ANY,
             timeout: float | None = None) -> Recv:
        """Request: receive from rank ``src_rank`` (or any member)."""
        if src_rank is ANY:
            return Recv(ANY, tag, timeout)
        if not (0 <= src_rank < self.size):
            raise MachineError(
                f"rank {src_rank} out of range for size-{self.size} comm "
                f"(members {self.members})")
        return Recv(self.members[src_rank], tag, timeout)

    def rank_of_pid(self, pid: int) -> int:
        """Group rank of a global processor id (must be a member)."""
        base = self._contig_base
        if base is not None:
            rank = pid - base
            if 0 <= rank < self.size and type(pid) is int:
                return rank
            raise MachineError(f"pid {pid} not in communicator {self.members}")
        table = self._rank_table
        if table is None:
            table = self._rank_table = {p: i for i, p in enumerate(self.members)}
        rank = table.get(pid)
        if rank is None:
            raise MachineError(f"pid {pid} not in communicator {self.members}")
        return rank

    def split(self, color_fn: Callable[[int], int],
              key_fn: Callable[[int], int] | None = None) -> "Comm":
        """Sub-communicator of members sharing this rank's colour.

        ``color_fn(rank)`` assigns every rank a colour; this processor joins
        the group of ranks with its own colour, ordered by ``key_fn(rank)``
        (default: rank order).  Deterministic — every member must use the
        same functions.
        """
        my_color = color_fn(self.rank)
        ranks = [r for r in range(self.size) if color_fn(r) == my_color]
        if key_fn is not None:
            ranks.sort(key=key_fn)
        # Members come from this (validated) group and ranks are unique.
        return Comm(self.env, [self.members[r] for r in ranks], _trusted=True)

    def subgroup(self, ranks: Sequence[int]) -> "Comm":
        """Sub-communicator of the given ranks (this rank must be included)."""
        if type(ranks) is range and ranks.step == 1:
            lo, hi = ranks.start, ranks.stop
            if lo < 0 or hi > self.size:
                bad = lo if lo < 0 else hi - 1
                raise MachineError(
                    f"rank {bad} out of range for size-{self.size} comm")
            base = self._contig_base
            return Comm(self.env, self.members[lo:hi], _trusted=True,
                        _contig_base=None if base is None else base + lo)
        return Comm(self.env, [self.pid_of(r) for r in ranks], _trusted=True)

    def __repr__(self) -> str:
        return f"Comm(rank={self.rank}/{self.size}, members={self.members})"
