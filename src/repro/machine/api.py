"""MPI-like communicators over the simulator.

A :class:`Comm` names an ordered group of virtual processors and gives each
member a group-relative *rank*.  All point-to-point and collective traffic
inside the group is addressed by rank, so the same program text runs
unchanged on any subgroup — which is exactly how the paper maps nested
``ParArray`` groups onto "the concept of a group in MPI" (§2.1).

``Comm.split`` derives sub-communicators from a colouring function of the
rank.  Because every member computes the same deterministic colouring, no
communication is needed (unlike ``MPI_Comm_split``, which must exchange
colours; the simulator's communicators are a modelling convenience, not a
wire protocol).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import MachineError
from repro.machine.events import ANY, Recv, Send
from repro.machine.simulator import ProcEnv

__all__ = ["Comm"]


class Comm:
    """An ordered processor group with rank-relative messaging."""

    def __init__(self, env: ProcEnv, members: Sequence[int] | None = None):
        self.env = env
        if members is None:
            members = range(env.nprocs)
        self.members: tuple[int, ...] = tuple(members)
        if len(set(self.members)) != len(self.members):
            raise MachineError(f"duplicate members in communicator: {self.members}")
        for pid in self.members:
            env.topology.check_node(pid)
        try:
            self._rank = self.members.index(env.pid)
        except ValueError:
            raise MachineError(
                f"processor {env.pid} is not a member of communicator "
                f"{self.members}") from None

    @classmethod
    def world(cls, env: ProcEnv) -> "Comm":
        """The communicator containing every processor of the machine."""
        return cls(env)

    @property
    def rank(self) -> int:
        """This processor's rank within the group."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of group members."""
        return len(self.members)

    def pid_of(self, rank: int) -> int:
        """Global processor id of a group rank."""
        if not (0 <= rank < self.size):
            raise MachineError(f"rank {rank} out of range for size-{self.size} comm")
        return self.members[rank]

    def send(self, dst_rank: int, payload: Any, *, tag: int = 0,
             nbytes: int | None = None) -> Send:
        """Request: send ``payload`` to the member with rank ``dst_rank``."""
        return self.env.send(self.pid_of(dst_rank), payload, tag=tag, nbytes=nbytes)

    def recv(self, src_rank: int | Any = ANY, *, tag: int | Any = ANY) -> Recv:
        """Request: receive from rank ``src_rank`` (or any member)."""
        src = ANY if src_rank is ANY else self.pid_of(src_rank)
        return self.env.recv(src, tag=tag)

    def rank_of_pid(self, pid: int) -> int:
        """Group rank of a global processor id (must be a member)."""
        try:
            return self.members.index(pid)
        except ValueError:
            raise MachineError(f"pid {pid} not in communicator {self.members}") from None

    def split(self, color_fn: Callable[[int], int],
              key_fn: Callable[[int], int] | None = None) -> "Comm":
        """Sub-communicator of members sharing this rank's colour.

        ``color_fn(rank)`` assigns every rank a colour; this processor joins
        the group of ranks with its own colour, ordered by ``key_fn(rank)``
        (default: rank order).  Deterministic — every member must use the
        same functions.
        """
        my_color = color_fn(self._rank)
        ranks = [r for r in range(self.size) if color_fn(r) == my_color]
        if key_fn is not None:
            ranks.sort(key=key_fn)
        return Comm(self.env, [self.members[r] for r in ranks])

    def subgroup(self, ranks: Sequence[int]) -> "Comm":
        """Sub-communicator of the given ranks (this rank must be included)."""
        return Comm(self.env, [self.pid_of(r) for r in ranks])

    def __repr__(self) -> str:
        return f"Comm(rank={self._rank}/{self.size}, members={self.members})"
