"""Performance analysis of simulated runs.

Post-mortem metrics over a :class:`~repro.machine.simulator.RunResult`:
load imbalance, communication intensity, per-processor breakdowns, and
speedup/efficiency series across runs — the quantities the paper's
evaluation section reasons about, factored out so benchmarks and user code
compute them one way.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.errors import MachineError
from repro.machine.simulator import RunResult

__all__ = [
    "load_imbalance",
    "comm_fraction",
    "per_proc_table",
    "fault_counters",
    "ScalingPoint",
    "scaling_series",
]


def load_imbalance(result: RunResult) -> float:
    """Max-over-mean busy time across processors (1.0 = perfectly balanced).

    The classic imbalance factor: the makespan of a bulk-synchronous phase
    is set by the busiest processor, so a value of 1.3 means ~23% of the
    machine-time is lost waiting for stragglers.

    Raises :class:`MachineError` for runs where the ratio is undefined —
    zero processors, or a run in which no processor did any work (an
    all-idle run has no load to be imbalanced).
    """
    busy = [s.busy_seconds for s in result.stats]
    if not busy:
        raise MachineError("load_imbalance is undefined for a run with "
                           "zero processors")
    mean = sum(busy) / len(busy)
    if mean == 0:
        raise MachineError("load_imbalance is undefined for an all-idle "
                           "run (no processor did any work)")
    return max(busy) / mean


def comm_fraction(result: RunResult) -> float:
    """Fraction of total processor-time spent in messaging overhead + idle.

    ``0.0`` = pure computation; values near ``1.0`` mean the run is
    communication-bound (where the paper's transformation rules pay off).

    Raises :class:`MachineError` when the fraction is undefined — zero
    processors or zero makespan (a run that consumed no machine-time has
    no time to split into compute and communication).
    """
    total = result.nprocs * result.makespan
    if total == 0:
        raise MachineError("comm_fraction is undefined for a run with no "
                           "machine-time (zero processors or zero makespan)")
    compute = result.total_compute_seconds
    return max(0.0, min(1.0, 1.0 - compute / total))


def per_proc_table(result: RunResult) -> str:
    """An aligned text table of per-processor activity.

    Column units: ``compute``/``overhead``/``idle``/``finish`` are virtual
    **seconds** (computation time, messaging software overhead, blocked
    waiting, and the processor's finish timestamp); ``msgs out`` is a
    **count** of messages sent; ``bytes out`` is payload **bytes** on the
    wire.
    """
    header = f"{'pid':>4}  {'compute':>10}  {'overhead':>10}  {'idle':>10}  " \
             f"{'msgs out':>8}  {'bytes out':>10}  {'finish':>10}"
    lines = [header, "-" * len(header)]
    for s in result.stats:
        lines.append(
            f"{s.pid:>4}  {s.compute_seconds:>10.6f}  {s.overhead_seconds:>10.6f}  "
            f"{s.idle_seconds:>10.6f}  {s.msgs_sent:>8}  {s.bytes_sent:>10}  "
            f"{s.finish_time:>10.6f}")
    return "\n".join(lines)


def fault_counters(result: RunResult) -> dict[str, int]:
    """Aggregate fault-layer counters for a run.

    Keys: ``retransmits``, ``timeouts``, ``dropped`` (messages the network
    ate), ``crashed`` (processors that died).  All four are zero for any
    fault-free run — existing metric assertions stay valid — and nonzero
    counts quantify the overhead a fault-tolerant run paid to survive.
    """
    return {
        "retransmits": sum(s.retransmits for s in result.stats),
        "timeouts": sum(s.timeouts for s in result.stats),
        "dropped": sum(s.msgs_dropped for s in result.stats),
        "crashed": len(result.crashed),
    }


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One (p, time) point of a scaling study, with derived quantities."""

    procs: int
    time: float
    speedup: float
    efficiency: float


def scaling_series(times: Mapping[int, float] | Sequence[tuple[int, float]],
                   *, baseline: float | None = None) -> list[ScalingPoint]:
    """Speedup/efficiency series from {processors: runtime}.

    ``baseline`` defaults to the time at the smallest processor count
    scaled as if it were p=1 (i.e. ``T(p_min) * p_min``) when p=1 is absent,
    or simply ``T(1)`` when present — the Figure 3 convention.
    """
    pairs = sorted(dict(times).items())
    if not pairs:
        raise MachineError("scaling_series needs at least one (p, time) pair")
    for p, t in pairs:
        if p <= 0 or t <= 0:
            raise MachineError(f"invalid scaling point (p={p}, t={t})")
    if baseline is None:
        p0, t0 = pairs[0]
        baseline = t0 if p0 == 1 else t0 * p0
    return [
        ScalingPoint(procs=p, time=t, speedup=baseline / t,
                     efficiency=baseline / (t * p))
        for p, t in pairs
    ]
