"""Reliable (ack/retransmit) messaging over the lossy simulated network.

The base simulator delivers every message exactly once — until a fault
injector (``Machine(..., faults=...)``) starts dropping, duplicating,
delaying or corrupting them.  This module provides the classic
end-to-end remedy on top of the raw ``Send``/``Recv`` primitives:

* every payload travels in a *frame* ``(msg_id, payload)`` on a data tag,
* the receiver acknowledges each frame's ``msg_id`` on a paired ack tag,
* the sender retransmits with capped exponential backoff until acked,
  and raises a structured :class:`~repro.errors.FaultError`
  (``kind="peer-dead"``) when the retry budget is exhausted,
* the receiver de-duplicates frames by ``(src, tag, msg_id)`` and always
  re-acks duplicates (the first ack may have been the lost message),
* corrupted frames (any payload that is not a well-formed frame) are
  *not* acked, so the sender retransmits the original.

All operations are generators, used with ``yield from`` inside a
virtual-processor program::

    chan = ReliableChannel(env)
    yield from chan.send(dst, payload, tag=3)
    value = yield from chan.recv(src, tag=3, timeout=1.0)
    theirs = yield from chan.exchange(peer, mine, tag=7)

**Every blocking wait in this layer services incoming traffic.**  A
dropped ack leaves the sender retransmitting to a peer that has long
moved on to a different operation; if that peer only listened on its own
tag, the retransmissions would never be re-acked and the sender would
stall (livelock).  So ``send``'s ack-wait, ``recv``'s data-wait and the
whole of ``exchange`` all receive ``(ANY, ANY)`` and *pump*: any
well-formed data frame from anyone is acked and stashed for the
``recv``/``exchange`` call it belongs to; stray acks are discarded.  One
consequence: while a channel operation is blocked, **raw** (non-reliable)
messages to this processor may be consumed and lost — a program mixing
raw and reliable traffic must not have both in flight at once.

The pump also makes symmetric traffic safe: two processors that
``chan.send`` to each other simultaneously ack each other's data from
inside their own ack-waits, then collect the payloads from the stash
with ``chan.recv``.  :meth:`ReliableChannel.exchange` packages exactly
that pattern (send + await ack + await peer payload in one loop) for
pairwise swaps like hyperquicksort's partner exchange.

Tag layout: user tags ``0 <= tag < 1_000_000`` map to data tag
``DATA_TAG_BASE + tag`` and ack tag ``ACK_TAG_BASE + tag``, disjoint from
each other, from raw user tags, and from the collectives' reserved block.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.errors import FaultError, MachineError
from repro.machine.cost import MachineSpec
from repro.machine.events import ANY, Recv, Send
from repro.machine.simulator import ProcEnv
from repro.machine.tags import MAX_USER_TAG

__all__ = ["ReliableChannel", "default_timeout", "DATA_TAG_BASE",
           "ACK_TAG_BASE", "MAX_USER_TAG"]

#: Reliable-layer frames live in these tag blocks (user tag added to each);
#: the exclusive user-tag bound MAX_USER_TAG is defined in
#: :mod:`repro.machine.tags` and re-exported here.
DATA_TAG_BASE = 2_000_000
ACK_TAG_BASE = 3_000_000

Gen = Generator[Any, Any, Any]


def default_timeout(spec: MachineSpec, *, nbytes_hint: int = 4096,
                    hops_hint: int = 8) -> float:
    """A per-attempt ack timeout comfortably above one round trip.

    Eight times the modelled round-trip of an ``nbytes_hint`` message over
    ``hops_hint`` hops (plus software overheads), floored at one
    microsecond so zero-cost specs like ``PERFECT`` still time out rather
    than spin at a zero deadline.
    """
    rtt = 2.0 * (spec.latency + spec.per_hop_latency * hops_hint
                 + nbytes_hint / spec.bandwidth
                 + spec.send_overhead + spec.recv_overhead)
    return max(8.0 * rtt, 1e-6)


def _check_tag(tag: int) -> None:
    if not (0 <= tag < MAX_USER_TAG):
        raise MachineError(
            f"reliable-layer tag must be in [0, {MAX_USER_TAG}), got {tag}")


def _well_formed(frame: Any) -> bool:
    """True iff ``frame`` is an uncorrupted ``(msg_id, payload)`` pair.

    Fault injectors corrupt a message by *replacing* its payload with a
    wrapper object, so structural validation doubles as corruption
    detection without this layer depending on any injector type.
    """
    return type(frame) is tuple and len(frame) == 2 and type(frame[0]) is int


class ReliableChannel:
    """Per-processor reliable messaging endpoint (see module docstring).

    One channel per virtual processor; it carries the sender's message-id
    counter, the receiver's de-duplication set, and the stash of frames
    consumed early by :meth:`exchange`.
    """

    def __init__(self, env: ProcEnv, *, timeout: float | None = None,
                 max_retries: int = 6, backoff: float = 2.0,
                 max_timeout: float | None = None):
        self.env = env
        self.timeout = (default_timeout(env.spec) if timeout is None
                        else float(timeout))
        if self.timeout <= 0:
            raise MachineError(f"timeout must be positive, got {self.timeout}")
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.max_timeout = (self.timeout * 16.0 if max_timeout is None
                            else float(max_timeout))
        self._next_id = 1
        self._seen: set[tuple[int, int, int]] = set()
        self._stash: dict[tuple[int, int], deque[Any]] = {}

    def worst_case_send_seconds(self) -> float:
        """Upper bound on the virtual time one :meth:`send` can take."""
        total, wait = 0.0, self.timeout
        for _ in range(self.max_retries + 1):
            total += wait
            wait = min(wait * self.backoff, self.max_timeout)
        return total

    # -- internal helpers -------------------------------------------------

    def _accept_data(self, src: int, tag: int, frame: Any) -> Gen:
        """Ack ``frame`` and stash its payload if fresh; never consumes it."""
        msg_id = frame[0]
        yield Send(src, msg_id, ACK_TAG_BASE + tag)
        key = (src, tag, msg_id)
        if key not in self._seen:
            self._seen.add(key)
            q = self._stash.get((src, tag))
            if q is None:
                q = self._stash[(src, tag)] = deque()
            q.append(frame[1])

    def _unstash(self, src: int, tag: int) -> tuple[bool, Any]:
        q = self._stash.get((src, tag))
        if q:
            return True, q.popleft()
        return False, None

    def _unstash_any(self, tag: int) -> tuple[bool, Any]:
        for key in sorted(k for k, q in self._stash.items()
                          if k[1] == tag and q):
            return True, self._stash[key].popleft()
        return False, None

    def _service(self, msg: Any) -> Gen:
        """Pump one raw message: ack-and-stash a data frame, drop the rest.

        Called from every blocking wait in this layer so that duplicate
        retransmissions aimed at us are always re-acked, no matter which
        channel operation we happen to be blocked in (see module
        docstring).  Stray acks and corrupted frames are discarded.
        """
        mtag = msg.tag
        if DATA_TAG_BASE <= mtag < DATA_TAG_BASE + MAX_USER_TAG:
            frame = msg.payload
            if _well_formed(frame):
                yield from self._accept_data(msg.src, mtag - DATA_TAG_BASE,
                                             frame)

    # -- public operations ------------------------------------------------

    def send(self, dst: int, payload: Any, *, tag: int = 0) -> Gen:
        """Reliably deliver ``payload`` to ``dst`` (blocks until acked).

        Raises :class:`FaultError` (``kind="peer-dead"``) after
        ``max_retries`` unacknowledged retransmissions.
        """
        _check_tag(tag)
        env = self.env
        msg_id = self._next_id
        self._next_id += 1
        data_tag = DATA_TAG_BASE + tag
        ack_tag = ACK_TAG_BASE + tag
        frame = (msg_id, payload)
        yield Send(dst, frame, data_tag)
        wait = self.timeout
        attempts = 0
        while True:
            # One attempt = one ack-wait window.  Serviced traffic does not
            # extend the window — the deadline is fixed per attempt, so a
            # chatty network cannot starve the retransmission schedule.
            deadline = env.now + wait
            while True:
                remaining = deadline - env.now
                if remaining <= 0.0:
                    break
                msg = yield Recv(ANY, ANY, remaining)
                if msg is None:
                    break
                if (msg.src == dst and msg.tag == ack_tag
                        and type(msg.payload) is int
                        and msg.payload == msg_id):
                    return None
                # Stale acks are dropped; data frames are re-acked and
                # stashed for the recv/exchange they belong to.
                yield from self._service(msg)
            attempts += 1
            if attempts > self.max_retries:
                raise FaultError(
                    f"pid {env.pid}: send to pid {dst} (tag {tag}) "
                    f"got no ack after {attempts} attempts; peer presumed "
                    f"dead", kind="peer-dead", pid=dst)
            wait = min(wait * self.backoff, self.max_timeout)
            yield Send(dst, frame, data_tag, None, True)

    def recv(self, src: int, *, tag: int = 0,
             timeout: float | None = None) -> Gen:
        """Reliably receive one payload (``src=ANY`` accepts any sender).

        Duplicates are absorbed and re-acked; corrupted frames are ignored
        (no ack, so the sender retransmits).  With ``timeout`` (virtual
        seconds total), raises :class:`FaultError` (``kind="timeout"``)
        if no fresh payload arrives in time.
        """
        _check_tag(tag)
        env = self.env
        deadline = None if timeout is None else env.now + timeout
        while True:
            if src is ANY:
                hit, payload = self._unstash_any(tag)
            else:
                hit, payload = self._unstash(src, tag)
            if hit:
                return payload
            if deadline is None:
                msg = yield Recv(ANY, ANY)
            else:
                remaining = deadline - env.now
                if remaining <= 0.0:
                    msg = None
                else:
                    msg = yield Recv(ANY, ANY, remaining)
            if msg is None:
                raise FaultError(
                    f"pid {env.pid}: reliable recv (src {src}, tag {tag}) "
                    f"timed out after {timeout} virtual seconds",
                    kind="timeout",
                    pid=src if type(src) is int else None)
            # Everything lands in the stash via the pump (corrupted frames
            # are silently dropped — no ack, so the sender retransmits);
            # the loop head then picks out the payload we were asked for.
            yield from self._service(msg)

    def exchange(self, peer: int, payload: Any, *, tag: int = 0) -> Gen:
        """Symmetric reliable swap: send ``payload`` to ``peer``, return theirs.

        Both partners must call ``exchange`` with the same ``tag``.  One
        loop waits for the ack of our frame *and* the peer's payload,
        servicing all other traffic through the pump, and retransmits our
        frame whenever a full backoff window passes without completing.
        """
        _check_tag(tag)
        env = self.env
        msg_id = self._next_id
        self._next_id += 1
        data_tag = DATA_TAG_BASE + tag
        ack_tag = ACK_TAG_BASE + tag
        frame = (msg_id, payload)
        yield Send(peer, frame, data_tag)
        _nothing = object()
        got_ack = False
        result = _nothing
        wait = self.timeout
        attempts = 0
        while True:
            if result is _nothing:
                hit, got = self._unstash(peer, tag)
                if hit:
                    result = got
            if got_ack and result is not _nothing:
                return result
            deadline = env.now + wait
            while not (got_ack and result is not _nothing):
                remaining = deadline - env.now
                if remaining <= 0.0:
                    break
                msg = yield Recv(ANY, ANY, remaining)
                if msg is None:
                    break
                if (msg.src == peer and msg.tag == ack_tag
                        and type(msg.payload) is int
                        and msg.payload == msg_id):
                    got_ack = True
                    continue
                yield from self._service(msg)
                if result is _nothing:
                    hit, got = self._unstash(peer, tag)
                    if hit:
                        result = got
            if got_ack and result is not _nothing:
                return result
            attempts += 1
            if attempts > self.max_retries:
                if result is not _nothing:
                    # Two-generals tail: we hold the peer's payload, so the
                    # peer reached this exchange; an eternally missing ack
                    # means the peer already completed it (our frame got
                    # through, the ack was lost) and may have exited —
                    # there is no one left obliged to re-ack.  Accept.
                    return result
                raise FaultError(
                    f"pid {env.pid}: exchange with pid {peer} (tag {tag}) "
                    f"stalled after {attempts} attempts; peer presumed "
                    f"dead", kind="peer-dead", pid=peer)
            # Retransmit even if only the ack is missing: a duplicate
            # forces the peer to re-ack, which is exactly the repair.
            wait = min(wait * self.backoff, self.max_timeout)
            yield Send(peer, frame, data_tag, None, True)

    def drain(self, *, quiet: float | None = None) -> Gen:
        """Service the network until it stays quiet for one full window.

        Call this after a program's *last* channel operation, before
        returning: the acks for our final receives may have been lost, in
        which case peers are still retransmitting data we already
        consumed — and once this program exits, nobody re-acks, so those
        peers would wrongly presume us dead.  Each incoming frame is
        pumped (re-acked, and stashed if somehow fresh); once nothing
        arrives for ``quiet`` virtual seconds the line is clear.

        The default window is ``max_timeout + timeout`` — the longest
        silence a still-retrying sender can produce between two frames
        aimed at us (one maximal backoff window plus transit slack) — so
        outlasting it proves every peer has either been acked or given up.
        """
        window = (self.max_timeout + self.timeout) if quiet is None else quiet
        while True:
            msg = yield Recv(ANY, ANY, window)
            if msg is None:
                return None
            yield from self._service(msg)

    def __repr__(self) -> str:
        return (f"ReliableChannel(pid={self.env.pid}, "
                f"timeout={self.timeout:.3g}, retries={self.max_retries})")
