"""Collective operations on a :class:`~repro.machine.api.Comm`.

Each collective is a generator to be invoked with ``yield from`` inside a
virtual-processor program::

    comm = Comm.world(env)
    total = yield from collectives.reduce(comm, my_part, op=operator.add)

The algorithms are the classic tree / recursive-doubling message patterns an
MPI implementation uses, so the simulator charges the same asymptotic
communication cost a real library would:

=============  ============================  =========================
collective     algorithm                     rounds
=============  ============================  =========================
``bcast``      binomial tree                 ceil(log2 p)
``reduce``     binomial tree (order-safe)    ceil(log2 p)
``allreduce``  reduce + bcast                2 ceil(log2 p)
``scan``       Hillis–Steele doubling        ceil(log2 p)
``gather``     binomial tree                 ceil(log2 p)
``scatter``    binomial tree                 ceil(log2 p)
``allgather``  gather + bcast                2 ceil(log2 p)
``alltoall``   pairwise rounds               p − 1
``barrier``    dissemination                 ceil(log2 p)
=============  ============================  =========================

``reduce`` and ``scan`` only require *associativity* of ``op`` (not
commutativity): partial results are always combined in rank order, matching
the paper's ``fold``/``scan`` contract ("the argument must be associative
... otherwise the result is undefined").
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

from repro.errors import MachineError
from repro.machine.api import Comm

__all__ = [
    "bcast",
    "reduce",
    "allreduce",
    "scan",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "barrier",
]

# Reserved tag block; user programs should keep tags below this.  The
# reliable messaging layer reserves two further blocks at 2_000_000 (data)
# and 3_000_000 (acks) — see ``repro.machine.reliable``.
_TAG_BCAST = 1_000_001
_TAG_REDUCE = 1_000_002
_TAG_SCAN = 1_000_003
_TAG_GATHER = 1_000_004
_TAG_SCATTER = 1_000_005
_TAG_ALLTOALL = 1_000_006
_TAG_BARRIER = 1_000_007

Gen = Generator[Any, Any, Any]


def _ceil_log2(n: int) -> int:
    return (n - 1).bit_length() if n > 1 else 0


def _vrank(comm: Comm, root: int) -> int:
    if not (0 <= root < comm.size):
        raise MachineError(f"root {root} out of range for size-{comm.size} comm")
    return (comm.rank - root) % comm.size


def _from_vrank(comm: Comm, vrank: int, root: int) -> int:
    return (vrank + root) % comm.size


def bcast(comm: Comm, value: Any = None, *, root: int = 0,
          nbytes: int | None = None) -> Gen:
    """Broadcast ``value`` from ``root`` to all members; returns it on all.

    Non-root members may pass ``value=None``; the broadcast value replaces it.
    """
    size = comm.size
    if root == 0:
        # Dominant case: vrank == rank and no modular renaming.
        v = comm.rank
        if size == 1:
            return value
        mask = 1
        while mask < size:
            if v < mask:
                dst = v + mask
                if dst < size:
                    yield comm.send(dst, value, tag=_TAG_BCAST, nbytes=nbytes)
            elif v < 2 * mask:
                msg = yield comm.recv(v - mask, tag=_TAG_BCAST)
                value = msg.payload
            mask <<= 1
        return value
    v = _vrank(comm, root)
    if size == 1:  # singleton group: nothing moves
        return value
    mask = 1
    while mask < size:
        if v < mask:
            dst = v + mask
            if dst < size:
                yield comm.send(_from_vrank(comm, dst, root), value,
                                tag=_TAG_BCAST, nbytes=nbytes)
        elif v < 2 * mask:
            msg = yield comm.recv(_from_vrank(comm, v - mask, root), tag=_TAG_BCAST)
            value = msg.payload
        mask <<= 1
    return value


def reduce(comm: Comm, value: Any, op: Callable[[Any, Any], Any], *,
           root: int = 0, nbytes: int | None = None) -> Gen:
    """Tree reduction of one value per member; result only on ``root``.

    Partial results are combined in **rank order** regardless of the root
    (MPI semantics), so any *associative* ``op`` is safe — commutativity is
    not required.  Non-root members return ``None``.  A non-zero root costs
    one extra message: the tree is rooted at rank 0, which forwards.
    """
    size = comm.size
    if not (0 <= root < size):
        raise MachineError(f"root {root} out of range for size-{size} comm")
    if size == 1:  # singleton group: the value is already reduced
        return value
    rank = comm.rank
    acc = value
    mask = 1
    done = False
    while mask < size:
        if rank & mask:
            yield comm.send(rank - mask, acc, tag=_TAG_REDUCE, nbytes=nbytes)
            done = True
            break
        src = rank + mask
        if src < size:
            msg = yield comm.recv(src, tag=_TAG_REDUCE)
            acc = op(acc, msg.payload)
        mask <<= 1
    if root == 0:
        return None if done else acc
    if rank == 0:
        yield comm.send(root, acc, tag=_TAG_REDUCE, nbytes=nbytes)
        return None
    if rank == root:
        msg = yield comm.recv(0, tag=_TAG_REDUCE)
        return msg.payload
    return None


def allreduce(comm: Comm, value: Any, op: Callable[[Any, Any], Any], *,
              nbytes: int | None = None) -> Gen:
    """Reduction whose result is returned on every member."""
    acc = yield from reduce(comm, value, op, root=0, nbytes=nbytes)
    acc = yield from bcast(comm, acc, root=0, nbytes=nbytes)
    return acc


def scan(comm: Comm, value: Any, op: Callable[[Any, Any], Any], *,
         nbytes: int | None = None) -> Gen:
    """Inclusive prefix reduction over ranks (Hillis–Steele doubling).

    Rank ``r`` returns ``op(x_0, op(x_1, ... x_r))`` combined in rank order;
    associativity of ``op`` suffices.  This is the machine-level counterpart
    of the paper's elementary ``scan`` skeleton.
    """
    size = comm.size
    rank = comm.rank
    my = value
    for k in range(_ceil_log2(size)):
        d = 1 << k
        if rank + d < size:
            yield comm.send(rank + d, my, tag=_TAG_SCAN, nbytes=nbytes)
        if rank - d >= 0:
            msg = yield comm.recv(rank - d, tag=_TAG_SCAN)
            my = op(msg.payload, my)
    return my


def gather(comm: Comm, value: Any, *, root: int = 0,
           nbytes: int | None = None) -> Gen:
    """Collect one value per member into a rank-ordered list on ``root``.

    Uses a binomial tree: each internal node forwards its accumulated
    ``{vrank: value}`` block upward.  Non-root members return ``None``.
    """
    size = comm.size
    v = _vrank(comm, root)
    block: dict[int, Any] = {v: value}
    mask = 1
    while mask < size:
        if v & mask:
            yield comm.send(_from_vrank(comm, v - mask, root), block,
                            tag=_TAG_GATHER, nbytes=nbytes)
            return None
        src = v + mask
        if src < size:
            msg = yield comm.recv(_from_vrank(comm, src, root), tag=_TAG_GATHER)
            block.update(msg.payload)
        mask <<= 1
    if len(block) != size:
        raise MachineError(f"gather assembled {len(block)}/{size} blocks")
    # block is keyed by vrank; return in *rank* order
    return [block[_vrank_of_rank(comm, r, root)] for r in range(size)]


def _vrank_of_rank(comm: Comm, rank: int, root: int) -> int:
    return (rank - root) % comm.size


def scatter(comm: Comm, values: Sequence[Any] | None = None, *, root: int = 0,
            nbytes: int | None = None) -> Gen:
    """Distribute ``values[r]`` to each rank ``r`` from ``root``.

    ``values`` is only read on the root (and must have one item per member);
    other members pass ``None``.  Binomial tree: each node receives its
    contiguous vrank block from its parent, then forwards sub-blocks to its
    children, largest block first.
    """
    size = comm.size
    v = _vrank(comm, root)
    if comm.rank == root:
        if values is None or len(values) != size:
            raise MachineError(
                f"scatter root needs exactly {size} values, got "
                f"{None if values is None else len(values)}")
        block = {u: values[_from_vrank(comm, u, root)] for u in range(size)}
    else:
        parent = v - (v & -v)
        msg = yield comm.recv(_from_vrank(comm, parent, root), tag=_TAG_SCATTER)
        block = msg.payload
    # forward sub-blocks to children: v + 2^k for 2^k < lowbit(v) (or < size for v=0)
    limit = (v & -v) if v else size
    k = _ceil_log2(limit) if limit > 1 else 0
    for bit in (1 << i for i in reversed(range(k + 1))):
        child = v + bit
        if bit < limit and child < size:
            # the child's block is the contiguous vrank range [child, child+bit)
            sub = {u: block[u] for u in range(child, min(child + bit, size))
                   if u in block}
            if sub:
                yield comm.send(_from_vrank(comm, child, root), sub,
                                tag=_TAG_SCATTER, nbytes=nbytes)
                for u in sub:
                    del block[u]
    if set(block) != {v}:
        raise MachineError(f"scatter left rank {comm.rank} holding vranks {sorted(block)}")
    return block[v]


def allgather(comm: Comm, value: Any, *, nbytes: int | None = None) -> Gen:
    """Every member receives the rank-ordered list of all contributions."""
    gathered = yield from gather(comm, value, root=0, nbytes=nbytes)
    gathered = yield from bcast(comm, gathered, root=0, nbytes=nbytes)
    return gathered


def alltoall(comm: Comm, values: Sequence[Any], *,
             nbytes: int | None = None) -> Gen:
    """Personalised exchange: member ``r`` receives ``values_s[r]`` from every ``s``.

    ``p - 1`` pairwise rounds; round ``r`` pairs each rank with the ranks at
    distance ``±r``.  Returns the received list in source-rank order.
    """
    size = comm.size
    rank = comm.rank
    if len(values) != size:
        raise MachineError(f"alltoall needs {size} values, got {len(values)}")
    out: list[Any] = [None] * size
    out[rank] = values[rank]
    for r in range(1, size):
        dst = (rank + r) % size
        src = (rank - r) % size
        yield comm.send(dst, values[dst], tag=_TAG_ALLTOALL, nbytes=nbytes)
        msg = yield comm.recv(src, tag=_TAG_ALLTOALL)
        out[src] = msg.payload
    return out


def barrier(comm: Comm) -> Gen:
    """Dissemination barrier: no member leaves before all have entered."""
    size = comm.size
    rank = comm.rank
    for k in range(_ceil_log2(size)):
        d = 1 << k
        yield comm.send((rank + d) % size, None, tag=_TAG_BARRIER, nbytes=1)
        yield comm.recv((rank - d) % size, tag=_TAG_BARRIER)
    return None
