"""Retained seed simulator: the pre-optimisation reference engine.

This is the original O(p)-scan implementation of :class:`Machine.run` —
ready list rebuilt and ``min()``-scanned every step, one linear-scan
mailbox list per processor — kept verbatim as the *oracle* for the
equivalence suite (``tests/machine/test_equivalence.py``).  The optimised
engine in :mod:`repro.machine.simulator` must produce bit-identical
values, per-processor stats, makespans and traces on every program; any
divergence is a bug in the rewrite, not a modelling change.

Do not use this engine for experiments — it is quadratic-ish in the
number of processors.  It intentionally shares :class:`ProcEnv`,
:class:`ProcStats` and :class:`RunResult` with the real simulator so
results are directly comparable.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Sequence

from repro.errors import DeadlockError, MachineError
from repro.machine.cost import estimate_nbytes
from repro.machine.events import ANY, Compute, Message, Recv, Send
from repro.machine.simulator import (Machine, ProcEnv, ProcStats, Program,
                                     RunResult, _BLOCKED, _DONE, _READY)
from repro.machine.trace import Trace

__all__ = ["ReferenceMachine"]


class _Proc:
    """Internal per-processor simulator state (seed layout: list mailbox)."""

    __slots__ = ("pid", "gen", "status", "pending_recv", "resume_value",
                 "recv_posted_at", "mailbox", "value")

    def __init__(self, pid: int, gen: Generator[Any, Any, Any]):
        self.pid = pid
        self.gen = gen
        self.status = _READY
        self.pending_recv: Recv | None = None
        self.resume_value: Any = None
        self.recv_posted_at = 0.0
        self.mailbox: list[Message] = []
        self.value: Any = None


class ReferenceMachine(Machine):
    """The seed scan-scheduler engine; same constructor as :class:`Machine`."""

    def run(self, program: Program | Sequence[Program], *,
            args: Iterable[tuple] | None = None) -> RunResult:
        """Seed implementation of :meth:`Machine.run`, kept verbatim."""
        n = self.nprocs
        if callable(program):
            programs: list[Program] = [program] * n
        else:
            programs = list(program)
            if len(programs) != n:
                raise MachineError(
                    f"expected {n} programs, got {len(programs)}")
        extra = [()] * n if args is None else [tuple(a) for a in args]
        if len(extra) != n:
            raise MachineError(f"expected {n} arg tuples, got {len(extra)}")

        self._clock = [0.0] * n
        self._tx_free = [0.0] * n
        self._rx_free = [0.0] * n
        trace = Trace() if self.record_trace else None
        stats = [ProcStats(pid=p) for p in range(n)]
        procs = []
        for pid in range(n):
            env = ProcEnv(self, pid)
            gen = programs[pid](env, *extra[pid])
            if not isinstance(gen, Generator):
                raise MachineError(
                    f"program for pid {pid} must be a generator function "
                    f"(did you forget to yield?); got {type(gen).__name__}")
            procs.append(_Proc(pid, gen))

        send_seq = 0
        alive = n

        def deliver(msg: Message) -> None:
            dst = procs[msg.dst]
            if dst.status == _DONE:
                raise MachineError(
                    f"message {msg!r} sent to already-finished processor {msg.dst}")
            dst.mailbox.append(msg)
            if dst.status == _BLOCKED and dst.pending_recv is not None:
                self._try_unblock(dst, stats[dst.pid], trace)

        while alive > 0:
            runnable = [p for p in procs if p.status == _READY]
            if not runnable:
                blocked = [p.pid for p in procs if p.status == _BLOCKED]
                raise DeadlockError(
                    f"deadlock: processors {blocked} blocked on receives "
                    f"that can never be satisfied")
            proc = min(runnable, key=lambda p: (self._clock[p.pid], p.pid))
            pid = proc.pid
            st = stats[pid]
            try:
                request = proc.gen.send(proc.resume_value)
            except StopIteration as stop:
                proc.status = _DONE
                proc.value = stop.value
                st.finish_time = self._clock[pid]
                alive -= 1
                if proc.mailbox:
                    raise MachineError(
                        f"processor {pid} finished with {len(proc.mailbox)} "
                        f"unconsumed messages in its mailbox")
                continue
            proc.resume_value = None

            if isinstance(request, Compute):
                start = self._clock[pid]
                self._clock[pid] = start + request.seconds
                st.compute_seconds += request.seconds
                if trace is not None:
                    trace.record(pid, "compute", start, self._clock[pid])
            elif isinstance(request, Send):
                self.topology.check_node(request.dst)
                if request.dst == pid:
                    raise MachineError(f"processor {pid} sent a message to itself")
                nbytes = (estimate_nbytes(request.payload, self.spec.word_bytes)
                          if request.nbytes is None else int(request.nbytes))
                start = self._clock[pid]
                self._clock[pid] = start + self.spec.send_overhead
                st.overhead_seconds += self.spec.send_overhead
                hops = max(1, self.topology.hops(pid, request.dst))
                if self.single_port:
                    wire = nbytes / self.spec.bandwidth
                    startup = (self.spec.latency
                               + self.spec.per_hop_latency * (hops - 1))
                    tx_start = max(self._clock[pid], self._tx_free[pid])
                    self._tx_free[pid] = tx_start + wire
                    arrival = max(tx_start + startup,
                                  self._rx_free[request.dst]) + wire
                    self._rx_free[request.dst] = arrival
                else:
                    arrival = self._clock[pid] + self.spec.transfer_time(nbytes, hops)
                send_seq += 1
                msg = Message(src=pid, dst=request.dst, tag=request.tag,
                              payload=request.payload, nbytes=nbytes,
                              sent_at=start, arrival=arrival, seq=send_seq)
                st.msgs_sent += 1
                st.bytes_sent += nbytes
                if trace is not None:
                    trace.record(pid, "send", start, self._clock[pid],
                                 dst=request.dst, tag=request.tag, nbytes=nbytes)
                deliver(msg)
            elif isinstance(request, Recv):
                proc.status = _BLOCKED
                proc.pending_recv = request
                proc.recv_posted_at = self._clock[pid]
                self._try_unblock(proc, st, trace)
            else:
                raise MachineError(
                    f"processor {pid} yielded {request!r}; expected "
                    f"Compute, Send or Recv (use `yield from` for collectives)")

        return RunResult(values=[p.value for p in procs], stats=stats, trace=trace)

    def _try_unblock(self, proc: _Proc, st: ProcStats, trace: Trace | None) -> None:
        """Complete ``proc``'s pending receive if a matching message exists."""
        recv = proc.pending_recv
        assert recv is not None
        best_idx = -1
        for i, msg in enumerate(proc.mailbox):
            if recv.matches(msg):
                if best_idx < 0 or (
                    (msg.arrival, msg.seq)
                    < (proc.mailbox[best_idx].arrival, proc.mailbox[best_idx].seq)
                ):
                    best_idx = i
                # concrete-(src,tag) receives are FIFO in send order
                if recv.src is not ANY and recv.tag is not ANY:
                    break
        if best_idx < 0:
            return
        msg = proc.mailbox.pop(best_idx)
        pid = proc.pid
        wait_start = proc.recv_posted_at
        ready_at = max(wait_start, msg.arrival)
        st.idle_seconds += ready_at - wait_start
        self._clock[pid] = ready_at + self.spec.recv_overhead
        st.overhead_seconds += self.spec.recv_overhead
        st.msgs_received += 1
        st.bytes_received += msg.nbytes
        if trace is not None:
            trace.record(pid, "recv", wait_start, self._clock[pid],
                         src=msg.src, tag=msg.tag, nbytes=msg.nbytes)
        proc.status = _READY
        proc.pending_recv = None
        proc.resume_value = msg
