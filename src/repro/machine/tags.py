"""Central message-tag registry: per-subsystem ranges, no collisions.

Every subsystem that owns message tags (the plan executor's exchange
traffic, the crash-aware collectives, the fault-tolerant runtime, the
fault-tolerant apps) reserves them here instead of hard-coding integers.
The registry enforces, at import time, the two properties that used to be
maintained by hand (and once weren't: the SCL compiler's exchange tag
collided with ``ft_bcast``'s):

* every reserved tag is **unique** across all subsystems, and
* every reserved tag lies below :data:`MAX_USER_TAG`, so it is legal both
  as a raw simulator tag and as a reliable-layer user tag (the reliable
  channel maps user tag ``t`` to frame tags ``DATA_TAG_BASE + t`` /
  ``ACK_TAG_BASE + t``).

Two kinds of tag space exist above the user range and are *blocks*, not
individual reservations: the plain collectives' raw-simulator tags and the
reliable layer's data/ack frame tags.  They are recorded in
:data:`INFRA_BLOCKS` so the disjointness test can cover the whole layout.
"""

from __future__ import annotations

from repro.errors import MachineError

__all__ = ["MAX_USER_TAG", "SUBSYSTEM_RANGES", "INFRA_BLOCKS", "reserve",
           "reserved", "subsystem_of"]

#: Exclusive upper bound on user tags accepted by the reliable layer
#: (re-exported by :mod:`repro.machine.reliable`).
MAX_USER_TAG = 1_000_000

#: Half-open ``[lo, hi)`` tag ranges owned by each subsystem.  All are below
#: :data:`MAX_USER_TAG`, so any reserved tag may travel over the reliable
#: channel as well as over the raw simulator.
SUBSYSTEM_RANGES: dict[str, tuple[int, int]] = {
    # small tags used by hand-written fault-tolerant applications
    "ft-apps": (1, 100),
    # the fault-tolerant farm/map runtime (control + job traffic)
    "ft-runtime": (800_001, 800_101),
    # crash-aware collectives over the reliable channel
    "collectives-ft": (900_001, 900_101),
    # the plan executor's point-to-point exchange traffic
    "plan": (910_001, 910_101),
}

#: Infrastructure tag blocks *above* the user range: not reservable, but
#: part of the global layout the disjointness test asserts.
INFRA_BLOCKS: dict[str, tuple[int, int]] = {
    # raw-simulator tags of repro.machine.collectives (never reliable-framed)
    "collectives-raw": (1_000_001, 1_000_101),
    # reliable-layer frame blocks: user tag t -> base + t
    "reliable-data": (2_000_000, 3_000_000),
    "reliable-ack": (3_000_000, 4_000_000),
}

_RESERVED: dict[str, int] = {}
_BY_TAG: dict[int, str] = {}


def reserve(subsystem: str, name: str, offset: int) -> int:
    """Reserve tag ``offset`` within ``subsystem``'s range; returns the tag.

    Idempotent for the same ``(subsystem, name, offset)`` triple (modules
    may be re-imported); any other overlap raises :class:`MachineError`.
    """
    try:
        lo, hi = SUBSYSTEM_RANGES[subsystem]
    except KeyError:
        raise MachineError(
            f"unknown tag subsystem {subsystem!r}; known: "
            f"{sorted(SUBSYSTEM_RANGES)}") from None
    tag = lo + offset
    if not (lo <= tag < hi):
        raise MachineError(
            f"tag offset {offset} out of range for subsystem {subsystem!r} "
            f"[{lo}, {hi})")
    full = f"{subsystem}.{name}"
    holder = _BY_TAG.get(tag)
    if holder is not None and holder != full:
        raise MachineError(
            f"tag {tag} already reserved by {holder!r}, requested by {full!r}")
    if full in _RESERVED and _RESERVED[full] != tag:
        raise MachineError(
            f"{full!r} already holds tag {_RESERVED[full]}, requested {tag}")
    _RESERVED[full] = tag
    _BY_TAG[tag] = full
    return tag


def reserved() -> dict[str, int]:
    """All current reservations as ``{"subsystem.name": tag}`` (a copy)."""
    return dict(_RESERVED)


def subsystem_of(tag: int) -> str | None:
    """The subsystem range or infra block containing ``tag``, if any."""
    for name, (lo, hi) in {**SUBSYSTEM_RANGES, **INFRA_BLOCKS}.items():
        if lo <= tag < hi:
            return name
    return None
