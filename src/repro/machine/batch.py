"""Batched drive-order engine: whole-segment execution with SoA flushes.

The per-event engine in :mod:`repro.machine.simulator` interleaves
processors one heap-pop at a time.  This module runs the *same* programs
under a different schedule that produces bit-identical results: each
processor is driven as far as it can go in one uninterrupted segment
(computes and sends apply immediately; concrete receives consume from
per-``(src, tag)`` message streams), and the segment's outgoing messages
are flushed as one batch whose delivery times are computed with a single
vectorised numpy expression — SoA parallel arrays instead of per-message
heap traffic.

Why this is sound
-----------------

The event engine processes requests in the global order ``(virtual time,
pid, program order)``.  Three consequences (each proven against the
reference semantics and guarded by ``tests/machine/test_equivalence.py``
and ``tests/machine/test_batch.py``):

* A concrete ``(src, tag)`` receive matches the n-th unconsumed message of
  that stream in sender program order — independent of any other
  processor's schedule.  Deep per-processor drives therefore commute.
* An ``ANY`` receive posted at key ``R = (post_time, pid)`` takes the
  minimum ``(arrival, send key)`` among matching messages with send key
  below ``R``, else the matching send with the minimum key above ``R``
  (the direct hand-off).  Both are decidable from a *frozen* message set
  once every other processor is finished or provably unable to send below
  the candidate key — the conservative-lookahead bound: a blocked
  processor's future sends carry keys at or above ``(post_time, pid)``,
  relaxed through chains of concrete waits (Bellman-style).
* Per-processor float accounting (compute/overhead/idle) is accumulated
  in program order, so the sums see the exact addition sequence of the
  event engine and stay bit-identical.

Epoch/lookahead invariant: between two quiescence points the engine only
commits events whose outcome is independent of undriven processors; any
receive whose outcome the bounds cannot decide parks until quiescence,
and if quiescence cannot decide it either, the run restarts on the
per-event oracle (:class:`BatchFallback`) — the same transparent-fallback
contract traced and faulted runs use.

The engine is active only for ``faults is None``, untraced,
multi-port runs; everything else takes the per-event path unchanged.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from itertools import repeat as _rep
from typing import Any

import numpy as np

from repro.errors import DeadlockError, MachineError
from repro.machine.cost import estimate_nbytes
from repro.machine.events import ANY, Compute, Message, Recv, Send

__all__ = ["BatchFallback", "run_batched"]

_INF = float("inf")

#: Flush size at which the vectorised arrival computation beats the
#: scalar loop (numpy call overhead amortises around a dozen messages).
_VEC_MIN = 16

_R, _B, _D = 0, 1, 2  # ready / blocked / done

# Accumulator slots (per-proc list; folded into ProcStats at finish so the
# float sums see the exact per-event addition order of the event engine).
_COMPUTE, _OVH, _IDLE = 0, 1, 2
_MSG_TX, _MSG_RX, _BYT_TX, _BYT_RX, _RETRANS, _TIMEOUTS = 3, 4, 5, 6, 7, 8


class BatchFallback(Exception):
    """Internal: this run needs the per-event engine; restart there."""


class _Sentinel:
    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self._name


#: Closure return values: effect applied / the drive loop must resolve
#: the receive (pattern parked in ``rcell``).  A satisfied receive
#: returns the delivered :class:`Message` itself — the drive loop
#: recognises it by class.  A program that yields a *stale* Message it
#: received earlier desynchronises ``issued``/``consumed`` and falls
#: back to the per-event engine, which raises the canonical error.
_OK = _Sentinel("<applied>")
_RECVQ = _Sentinel("<recv-queued>")

# Message is a NamedTuple; building it through the raw C tuple constructor
# skips the Python-level __new__ wrapper (~2x cheaper per delivery).
_tnew = tuple.__new__


class _Stream:
    """One sender's messages to one ``(src, tag)`` mailbox stream.

    ``msgs`` rows are ``(sent_at, src, send_ordinal, tag, arrival,
    payload, nbytes)`` appended in sender program order (= global key
    order restricted to the stream) — the same row layout the solo
    snapshot uses, so freezing a stream is a C-level slice copy.
    ``taken`` marks rows consumed out of order by wildcard receives;
    ``head`` is the low-water mark (every row below it is taken);
    ``ooo`` counts out-of-order takes still above ``head``.
    """

    __slots__ = ("msgs", "taken", "head", "ooo")

    def __init__(self) -> None:
        self.msgs: list[tuple] = []
        self.taken = bytearray()
        self.head = 0
        self.ooo = 0


class _View:
    """Per-pattern cursor over a :class:`_Snap` (solo-mode receives)."""

    __slots__ = ("rows", "ptr")

    def __init__(self, rows: list[int]):
        self.rows = rows
        self.ptr = 0


class _Snap:
    """Frozen snapshot of every undelivered message to the last live
    processor, globally sorted by send key ``(time, src, ordinal)``.

    ``rows`` holds ``(sent_at, src, ordinal, tag, arrival, payload,
    nbytes)`` tuples — one unpack on the hot path instead of six column
    indexes; the key prefix is unique so sorting the tuples never
    compares payloads."""

    __slots__ = ("rows", "taken", "views", "mono", "m", "dlov", "total_nb")

    def __init__(self, rows, mono, total_nb):
        self.rows = rows
        self.m = len(rows)
        self.taken = bytearray(self.m)
        self.views: dict[tuple, _View] = {}
        #: Arrivals non-decreasing in key order: wildcard selection
        #: degenerates to "next unconsumed row" (mailbox minimum and
        #: direct hand-off coincide) — the pointer fast path.
        self.mono = mono
        #: Absolute-deadline override for quiescence re-probes (the
        #: stored deadline must be compared bit-exactly, not rebuilt
        #: from a relative timeout).
        self.dlov: list = [None]
        #: Sum of all row nbytes: receive counters are *derived* at
        #: finish (delivered = taken.count, bytes = total - undelivered)
        #: instead of being bumped per call — integer sums are
        #: order-free, so this cannot perturb bit-exactness.
        self.total_nb = total_nb


class _BP:
    """Per-processor drive state."""

    __slots__ = ("pid", "gen", "env", "status", "value", "streams", "sbuf",
                 "kord", "issued", "consumed", "rcell", "acc",
                 "c_send", "c_recv", "pend_src", "pend_tag", "post",
                 "deadline", "resume", "snap")

    def __init__(self, pid: int, gen: Any, env: Any):
        self.pid = pid
        self.gen = gen
        self.env = env
        self.status = _R
        self.value: Any = None
        self.streams: dict[tuple, _Stream] = {}
        self.sbuf: list[tuple] = []
        self.kord = 0          # per-proc send ordinal base
        self.issued = [0]      # shared with closures (desync detection)
        self.consumed = 0
        self.rcell: list[Any] = [None, None, None]
        self.acc = [0.0, 0.0, 0.0, 0, 0, 0, 0, 0, 0]
        self.c_send: Any = None
        self.c_recv: Any = None
        self.pend_src: Any = None
        self.pend_tag: Any = None
        self.post = 0.0
        self.deadline: float | None = None
        self.resume: Any = None
        self.snap: _Snap | None = None


def run_batched(machine: Any, programs: list, extra: list) -> Any:
    """Run ``programs`` on ``machine`` under the batched schedule.

    Raises :class:`BatchFallback` when the run needs the per-event engine
    (a program issued requests without yielding them, or a wildcard race
    the conservative bounds cannot decide); the caller restarts on the
    event engine, which is also the documented error-parity oracle.
    """
    from repro.machine.simulator import ProcEnv, ProcStats, RunResult

    topology = machine.topology
    n = topology.size
    spec = machine.spec
    send_ovh = spec.send_overhead
    recv_ovh = spec.recv_overhead
    latency = spec.latency
    per_hop = spec.per_hop_latency
    bandwidth = spec.bandwidth
    word_bytes = spec.word_bytes
    flop_time = spec.flop_time
    hops_nocheck = topology._hops_nocheck
    hop_array = topology.hop_array

    clock = [0.0] * n
    machine._clock = clock
    machine._tx_free = [0.0] * n
    machine._rx_free = [0.0] * n
    machine._span = None
    machine._crashed = None

    stats = [ProcStats(pid=p) for p in range(n)]
    gseq = [0]                 # delivered-message sequence numbers
    bps: list[_BP] = []
    wl: deque[int] = deque()
    queued = bytearray(n)
    alive = n
    events = 0
    hop_cache: list[dict | None] = [None] * n

    def _mk_ops(p: _BP):
        """Build the immediate-effect work/send/recv closures for ``p``."""
        pid = p.pid
        issued = p.issued
        acc = p.acc
        sbuf = p.sbuf
        streams = p.streams
        rcell = p.rcell

        def work(ops):
            ocls = ops.__class__
            if ocls is not int and ocls is not float:
                ops = float(ops)
            if ops < 0:
                raise MachineError(
                    f"ops must be non-negative, got {float(ops)}")
            sec = ops * flop_time
            if not (sec >= 0):
                raise ValueError(
                    f"Compute.seconds must be non-negative, got {sec!r}")
            clock[pid] += sec
            acc[_COMPUTE] += sec
            issued[0] += 1
            return _OK

        def send(dst, payload, *, tag=0, nbytes=None, is_retransmit=False):
            if dst.__class__ is not int or not 0 <= dst < n:
                topology.check_node(dst)
            if dst == pid:
                raise MachineError(f"processor {pid} sent a message to itself")
            if nbytes.__class__ is int:
                nb = nbytes
            elif nbytes is None:
                nb = estimate_nbytes(payload, word_bytes)
            else:
                nb = int(nbytes)
            if nb < 0:
                raise MachineError(f"nbytes must be non-negative, got {nb}")
            t0 = clock[pid]
            clock[pid] = t0 + send_ovh
            acc[_OVH] += send_ovh
            if is_retransmit:
                acc[_RETRANS] += 1
            sbuf.append((t0, dst, tag, payload, nb))
            issued[0] += 1
            return _OK

        def recv(src=ANY, *, tag=ANY, timeout=None):
            issued[0] += 1
            if src is ANY or tag is ANY:
                rcell[0] = src
                rcell[1] = tag
                rcell[2] = timeout
                return _RECVQ
            s = streams.get((src, tag))
            if s is not None:
                msgs = s.msgs
                taken = s.taken
                h = s.head
                nm = len(msgs)
                while h < nm and taken[h]:
                    h += 1
                if h < nm:
                    taken[h] = 1
                    s.head = h + 1
                    t0m, sr, k, tg, arr, payload, nb = msgs[h]
                    w = clock[pid]
                    if arr > w:
                        acc[_IDLE] += arr - w
                        w = arr
                    clock[pid] = w + recv_ovh
                    acc[_OVH] += recv_ovh
                    acc[_MSG_RX] += 1
                    acc[_BYT_RX] += nb
                    gseq[0] = sq = gseq[0] + 1
                    return _tnew(Message, (src, pid, tag, payload, nb, t0m, arr, sq))
                s.head = h
            rcell[0] = src
            rcell[1] = tag
            rcell[2] = timeout
            return _RECVQ

        return work, send, recv

    for pid in range(n):
        env = ProcEnv(machine, pid)
        gen = programs[pid](env, *extra[pid])
        if not isinstance(gen, Generator):
            raise MachineError(
                f"program for pid {pid} must be a generator function "
                f"(did you forget to yield?); got {type(gen).__name__}")
        p = _BP(pid, gen, env)
        work, send, recv = _mk_ops(p)
        env.work = work
        env.send = send
        env.recv = recv
        p.c_send = send
        p.c_recv = recv
        bps.append(p)
        wl.append(pid)
        queued[pid] = 1

    def _flush(p: _BP) -> None:
        """Distribute ``p``'s buffered sends: vectorised delivery times,
        stream appends, concrete-waiter wakeups, finished-peer checks."""
        sb = p.sbuf
        m = len(sb)
        src = p.pid
        kb = p.kord
        p.kord = kb + m
        hc = hop_cache[src]
        if hc is None:
            hc = hop_cache[src] = {}
        acc = p.acc
        if m >= _VEC_MIN:
            cols = list(zip(*sb))
            dstc = cols[1]
            uniq = set(dstc)
            arr = np.fromiter(cols[0], np.float64, m)
            arr += send_ovh
            nbc = cols[4]
            nbv = np.fromiter(nbc, np.float64, m)
            if len(uniq) == 1:
                d = dstc[0]
                hops = hc.get(d)
                if hops is None:
                    h = hops_nocheck(src, d)
                    hc[d] = hops = h if h >= 1 else 1
                arr += (latency + per_hop * (hops - 1)) + nbv / bandwidth
            else:
                # Whole-row gather: one fancy index into the topology's
                # cached (clamped) hop row replaces a dict lookup per
                # message.  Values are identical to the hc entries, so
                # the float expression below is unchanged bit for bit.
                hv = hop_array(src)[np.fromiter(dstc, np.intp, m)]
                arr += (latency + per_hop * (hv - 1.0)) + nbv / bandwidth
            arrs = arr.tolist()
            acc[_BYT_TX] += sum(nbc)  # exact: integer bytes
        else:
            arrs = []
            nbt = 0
            for t0, dst, tag, payload, nb in sb:
                hops = hc.get(dst)
                if hops is None:
                    hops = hops_nocheck(src, dst)
                    hc[dst] = hops = hops if hops >= 1 else 1
                t1 = t0 + send_ovh
                arrs.append(t1 + (latency + per_hop * (hops - 1)
                                  + nb / bandwidth))
                nbt += nb
            acc[_BYT_TX] += nbt
        # Whole-batch fast path: every send targets one (dst, tag)
        # stream (fan-in, ring) — append rows with one C-level zip.
        if m >= _VEC_MIN and len(uniq) == 1 and len(set(cols[2])) == 1:
            dst = dstc[0]
            tag = cols[2][0]
            dp = bps[dst]
            dstat = dp.status
            if dstat != _D:
                s = dp.streams.get((src, tag))
                if s is None:
                    s = dp.streams[(src, tag)] = _Stream()
                s.msgs.extend(zip(cols[0], _rep(src), range(kb, kb + m),
                                  cols[2], arrs, cols[3], nbc))
                s.taken.extend(bytes(m))
                if (dstat == _B and dp.pend_src == src
                        and dp.pend_tag == tag and not queued[dst]):
                    queued[dst] = 1
                    wl.append(dst)
                sb.clear()
                return
        # Consecutive sends usually target one (dst, tag) stream (fan-in
        # and ring patterns); memoise the stream lookup across the run.
        pdst = -1
        ptag = _OK  # never equals a user tag
        s_app = None
        t_app = None
        wake = False
        for j in range(m):
            t0, dst, tag, payload, nb = sb[j]
            if dst != pdst or tag != ptag:
                pdst = dst
                ptag = tag
                dp = bps[dst]
                dstat = dp.status
                if dstat == _D:
                    ft = stats[dst].finish_time
                    if ft < t0 or (ft == t0 and dst < src):
                        gseq[0] = sq = gseq[0] + 1
                        msg = Message(src, dst, tag, payload, nb,
                                      t0, arrs[j], sq)
                        raise MachineError(
                            f"message {msg!r} sent to already-finished "
                            f"processor {dst}")
                    # The event engine would have flagged this message as
                    # unconsumed at dst's finish; replay there for the
                    # exact error.
                    raise BatchFallback
                s = dp.streams.get((src, tag))
                if s is None:
                    s = dp.streams[(src, tag)] = _Stream()
                s_app = s.msgs.append
                t_app = s.taken.append
                wake = (dstat == _B and dp.pend_src == src
                        and dp.pend_tag == tag)
            s_app((t0, src, kb + j, tag, arrs[j], payload, nb))
            t_app(0)
            if wake and not queued[dst]:
                queued[dst] = 1
                wl.append(dst)
        sb.clear()

    def _finish(p: _BP, value: Any) -> None:
        nonlocal alive
        if p.issued[0] != p.consumed:
            raise BatchFallback
        if p.sbuf:
            _flush(p)
        pid = p.pid
        st = stats[pid]
        ft = clock[pid]
        # Unconsumed-mailbox parity: messages with send key below the
        # finish key were in the mailbox; any above mean a send the event
        # engine would reject as addressed to a finished processor.
        # Solo-mode receive counters are derived here (C-level byte
        # count + integer sums, order-free) rather than per delivery.
        unc = 0
        future = None
        acc = p.acc
        snap = p.snap
        if snap is not None:
            ndeliv = snap.taken.count(1)
            acc[_MSG_RX] += ndeliv
            if ndeliv == snap.m:
                acc[_BYT_RX] += snap.total_nb
            else:
                undel_nb = 0
                taken = snap.taken
                rows_data = snap.rows
                for r in range(snap.m):
                    if taken[r]:
                        continue
                    t0m, src, k, tag, arr, payload, nb = rows_data[r]
                    undel_nb += nb
                    if t0m < ft or (t0m == ft and src < pid):
                        unc += 1
                    elif future is None or (t0m, src) < future[:2]:
                        future = (t0m, src, tag, payload, nb, arr)
                acc[_BYT_RX] += snap.total_nb - undel_nb
        else:
            for s in p.streams.values():
                msgs = s.msgs
                taken = s.taken
                for i in range(s.head, len(msgs)):
                    if taken[i]:
                        continue
                    t0m, src, k, tag, arr, payload, nb = msgs[i]
                    if t0m < ft or (t0m == ft and src < pid):
                        unc += 1
                    elif future is None or (t0m, src) < future[:2]:
                        future = (t0m, src, tag, payload, nb, arr)
        if unc:
            raise MachineError(
                f"processor {pid} finished with {unc} "
                f"unconsumed messages in its mailbox")
        if future is not None:
            t0m, src, tag, payload, nb, arr = future
            gseq[0] = sq = gseq[0] + 1
            msg = _tnew(Message, (src, pid, tag, payload, nb, t0m, arr, sq))
            raise MachineError(
                f"message {msg!r} sent to already-finished processor {pid}")
        st.finish_time = ft
        st.compute_seconds = acc[_COMPUTE]
        st.overhead_seconds = acc[_OVH]
        st.idle_seconds = acc[_IDLE]
        st.msgs_sent = p.kord  # every send was flushed through kord
        st.msgs_received = acc[_MSG_RX]
        st.bytes_sent = acc[_BYT_TX]
        st.bytes_received = acc[_BYT_RX]
        st.retransmits = acc[_RETRANS]
        st.timeouts = acc[_TIMEOUTS]
        p.value = value
        p.status = _D
        alive -= 1

    def _fire_timeout(p: _BP) -> None:
        """Resume a timed-out receive with ``None`` at its deadline."""
        d = p.deadline
        acc = p.acc
        acc[_IDLE] += d - p.post
        acc[_TIMEOUTS] += 1
        clock[p.pid] = d
        p.resume = None
        p.status = _R
        p.pend_src = p.pend_tag = None
        p.deadline = None

    def _complete(p: _BP, s: _Stream, i: int, src, tag, advance: bool) -> None:
        """Deliver stream row ``i`` to blocked ``p`` (wake or quiescence)."""
        pid = p.pid
        s.taken[i] = 1
        if advance:
            s.head = i + 1
        else:
            s.ooo += 1
        t0m, sr, k, tg, arr, payload, nb = s.msgs[i]
        acc = p.acc
        w = clock[pid]
        ready = arr if arr > w else w
        acc[_IDLE] += ready - w
        clock[pid] = ready + recv_ovh
        acc[_OVH] += recv_ovh
        acc[_MSG_RX] += 1
        acc[_BYT_RX] += nb
        gseq[0] = sq = gseq[0] + 1
        p.resume = _tnew(Message, (src, pid, tag, payload, nb, t0m, arr, sq))
        p.status = _R
        p.pend_src = p.pend_tag = None
        p.deadline = None

    def _enter_solo(p: _BP) -> None:
        """Freeze the remaining traffic into a sorted row snapshot and
        swap in the pointer-walk receive closure (last live processor)."""
        rd: list = []
        for s in p.streams.values():
            if not s.ooo:
                # No out-of-order takes: everything from head on is live,
                # and rows already carry the snapshot layout — C-level copy.
                rd += s.msgs if s.head == 0 else s.msgs[s.head:]
                continue
            msgs = s.msgs
            taken = s.taken
            for i in range(s.head, len(msgs)):
                if not taken[i]:
                    rd.append(msgs[i])
        mono = True
        if len(rd) > 1:
            # Tuple sort: the (time, src, ordinal) prefix is unique, so
            # comparisons never reach the payload column.
            rd.sort(key=None)  # lexicographic; key prefix unique
            av = np.fromiter((row[4] for row in rd), np.float64, len(rd))
            mono = bool(np.all(av[1:] >= av[:-1]))
        p.streams = {}
        p.snap = snap = _Snap(rd, mono, sum(row[6] for row in rd))

        pid = p.pid
        issued = p.issued
        acc = p.acc
        rcell = p.rcell
        views = snap.views
        taken = snap.taken
        rows_data = snap.rows
        nrows = snap.m
        is_mono = snap.mono
        # (src, tag) -> view memo for the last pattern, as closure cells
        # (LOAD_DEREF beats list indexing on the per-receive hot path).
        lp_src = lp_tag = lp_view = None
        #: Fast lane: monotone arrivals and a single live pattern mean
        #: no row can be taken behind a view's pointer — delivery is a
        #: pure pointer walk.  Creating a second view disables it.
        fast = is_mono

        def _mkview(rs, rt) -> _View:
            nonlocal fast
            if views:
                fast = False
            if rs is ANY:
                if rt is ANY:
                    rows = [r for r in range(nrows) if not taken[r]]
                else:
                    rows = [r for r in range(nrows)
                            if rows_data[r][3] == rt and not taken[r]]
            elif rt is ANY:
                rows = [r for r in range(nrows)
                        if rows_data[r][1] == rs and not taken[r]]
            else:
                rows = [r for r in range(nrows)
                        if rows_data[r][1] == rs and rows_data[r][3] == rt
                        and not taken[r]]
            v = views[(rs, rt)] = _View(rows)
            return v

        def solo_recv(src=ANY, *, tag=ANY, timeout=None):
            nonlocal lp_src, lp_tag, lp_view
            issued[0] += 1
            if (timeout is None and fast and src is lp_src
                    and tag is lp_tag):
                v = lp_view
                rows = v.rows
                i = v.ptr
                if i < len(rows):
                    v.ptr = i + 1
                    r = rows[i]
                    taken[r] = 1
                    t0m, sr, k, tg, arr, payload, nb = rows_data[r]
                    w = clock[pid]
                    if arr > w:
                        acc[_IDLE] += arr - w
                        w = arr
                    clock[pid] = w + recv_ovh
                    acc[_OVH] += recv_ovh
                    gseq[0] = sq = gseq[0] + 1
                    return _tnew(Message, (sr, pid, tg, payload, nb, t0m, arr, sq))
                rcell[0] = src
                rcell[1] = tag
                rcell[2] = timeout
                return _RECVQ
            if src is lp_src and tag is lp_tag:
                v = lp_view
            else:
                v = views.get((src, tag))
                if v is None:
                    v = _mkview(src, tag)
                lp_src = src
                lp_tag = tag
                lp_view = v
            rows = v.rows
            i = v.ptr
            nr = len(rows)
            while i < nr and taken[rows[i]]:
                i += 1
            if i >= nr:
                v.ptr = i
                rcell[0] = src
                rcell[1] = tag
                rcell[2] = timeout
                return _RECVQ
            wildcard = src is ANY or tag is ANY
            if timeout is not None or (wildcard and not is_mono):
                v.ptr = i
                r = _solo_pick(v, src, tag, timeout, wildcard)
                if r is None:
                    rcell[0] = src
                    rcell[1] = tag
                    rcell[2] = timeout
                    return _RECVQ
            else:
                r = rows[i]
                v.ptr = i + 1
            taken[r] = 1
            t0m, sr, k, tg, arr, payload, nb = rows_data[r]
            w = clock[pid]
            if arr > w:
                acc[_IDLE] += arr - w
                w = arr
            clock[pid] = w + recv_ovh
            acc[_OVH] += recv_ovh
            gseq[0] = sq = gseq[0] + 1
            return _tnew(Message, (sr, pid, tg, payload, nb, t0m, arr, sq))

        def _solo_pick(v, src, tag, timeout, wildcard):
            """Exact candidate under timeouts / non-monotone arrivals.

            Returns the snapshot row to deliver, or ``None`` when the
            timeout beats every candidate (the caller resumes with None).
            Rows are key-sorted, so the messages below the post key — the
            ones a mailbox receive would see — form a prefix of the view.
            """
            rows = v.rows
            w = clock[pid]
            best = None     # mailbox: min (arrival, key) below the post key
            cand = None     # hand-off: min key at or above the post key
            i = v.ptr
            nr = len(rows)
            while i < nr and taken[rows[i]]:
                i += 1
            if not wildcard:
                # Concrete streams match FIFO: the first live row wins
                # whether it is a mailbox hit or the direct hand-off.
                r = rows[i]
                t0m, sr = rows_data[r][0], rows_data[r][1]
                if t0m < w or (t0m == w and sr < pid):
                    return r
                cand = r
            else:
                for j in range(i, nr):
                    r = rows[j]
                    if taken[r]:
                        continue
                    t0m, sr, k, tg, arr = rows_data[r][:5]
                    if t0m < w or (t0m == w and sr < pid):
                        key = (arr, t0m, sr, k)
                        if best is None or key < best[0]:
                            best = (key, r)
                    else:
                        cand = r
                        break
                if best is not None:
                    return best[1]
            if cand is None:
                return None
            if timeout is not None:
                d = snap.dlov[0]
                if d is None:
                    d = w + timeout
                else:
                    snap.dlov[0] = None
                t0c, src_c = rows_data[cand][0], rows_data[cand][1]
                if t0c > d or (t0c == d and src_c > pid):
                    return None
            return cand

        p.c_recv = solo_recv
        p.env.recv = solo_recv

    def _solo_resolve(p: _BP) -> None:
        """Quiescence with one live (blocked) processor: decide its
        pending receive against the frozen snapshot."""
        if p.snap is None:
            _enter_solo(p)
        rs, rt = p.pend_src, p.pend_tag
        d = p.deadline
        timeout = None
        if d is not None:
            p.snap.dlov[0] = d
            timeout = 0.0  # placeholder; the pick uses the exact deadline
        r = p.c_recv(rs, tag=rt, timeout=timeout)
        if p.snap.dlov[0] is not None:
            p.snap.dlov[0] = None
        p.issued[0] -= 1  # internal probe, not a program request
        if r.__class__ is Message:
            p.resume = r
            p.status = _R
            p.pend_src = p.pend_tag = None
            p.deadline = None
        elif d is not None:
            _fire_timeout(p)
        else:
            raise DeadlockError(
                f"deadlock: processors {[p.pid]} blocked on receives "
                f"that can never be satisfied")
        queued[p.pid] = 1
        wl.append(p.pid)

    def _quiesce() -> None:
        """Every live processor is blocked: decide one parked receive
        using the conservative lookahead bounds, or fall back."""
        blocked = [q for q in bps if q.status == _B]
        blocked_pids = [q.pid for q in blocked]
        if alive == 1:
            _solo_resolve(blocked[0])
            return
        # Lower bounds on every blocked processor's next send key.
        bt = {q.pid: q.post for q in blocked}
        for _ in range(len(blocked)):
            changed = False
            for q in blocked:
                if (q.deadline is None and q.pend_src is not ANY
                        and q.pend_tag is not ANY):
                    ps = q.pend_src
                    if type(ps) is int and 0 <= ps < n:
                        sp = bps[ps]
                        nb = _INF if sp.status == _D else bt.get(ps, 0.0)
                    else:
                        nb = _INF  # no such sender: blocked forever
                    if nb > bt[q.pid]:
                        bt[q.pid] = nb
                        changed = True
            if not changed:
                break
        waiters = [q for q in blocked
                   if q.pend_src is ANY or q.pend_tag is ANY
                   or q.deadline is not None]
        any_candidate = False
        for X in sorted(waiters, key=lambda q: (q.post, q.pid)):
            w = X.post
            xp = X.pid
            d = X.deadline
            rs, rt = X.pend_src, X.pend_tag
            best = None
            cand = None
            for (src, tag), s in X.streams.items():
                if (rs is not ANY and src != rs) or \
                        (rt is not ANY and tag != rt):
                    continue
                msgs = s.msgs
                taken = s.taken
                for i in range(s.head, len(msgs)):
                    if taken[i]:
                        continue
                    t0m, sr2, k, tg2, arr, payload, nb = msgs[i]
                    if t0m < w or (t0m == w and src < xp):
                        key = (arr, t0m, src, k)
                        if best is None or key < best[0]:
                            best = (key, s, i, src, tag)
                    else:
                        key = (t0m, src, k)
                        if cand is None or key < cand[0]:
                            cand = (key, s, i, src, tag)
                        break  # stream rows are key-sorted
            if best is not None or cand is not None or d is not None:
                any_candidate = True
            others = [q for q in blocked if q.pid != xp]
            if best is not None:
                # Mailbox minimum is exact iff nobody can still send a
                # message with key below the post key.
                if all(bt[q.pid] > w or (bt[q.pid] == w and q.pid > xp)
                       for q in others):
                    _, s, i, src, tag = best
                    _complete(X, s, i, src, tag, advance=False)
                    queued[xp] = 1
                    wl.append(xp)
                    return
                continue
            if cand is not None:
                ck, s, i, src, tag = cand
                t0c, src_c, _k = ck
                if d is not None and (t0c > d or (t0c == d and src_c > xp)):
                    if all(bt[q.pid] > d or (bt[q.pid] == d and q.pid > xp)
                           for q in others):
                        _fire_timeout(X)
                        queued[xp] = 1
                        wl.append(xp)
                        return
                elif all(q.pid == src_c or bt[q.pid] > t0c
                         or (bt[q.pid] == t0c and q.pid > src_c)
                         for q in others):
                    # Hand-off: candidate key beats every possible future
                    # send (the candidate's own sender only sends later
                    # keys: its clock and ordinal both already passed it).
                    _complete(X, s, i, src, tag, advance=False)
                    queued[xp] = 1
                    wl.append(xp)
                    return
            elif d is not None:
                if all(bt[q.pid] > d or (bt[q.pid] == d and q.pid > xp)
                       for q in others):
                    _fire_timeout(X)
                    queued[xp] = 1
                    wl.append(xp)
                    return
        if not any_candidate:
            raise DeadlockError(
                f"deadlock: processors {blocked_pids} blocked on receives "
                f"that can never be satisfied")
        raise BatchFallback

    # ------------------------------------------------------------------
    # Main drive loop: run each queued processor as deep as it can go.
    #
    # The whole loop is guarded: if a user-visible error surfaces while
    # any processor is desynchronised (a closure was called without its
    # result being yielded — the per-event engine would NOT have applied
    # that effect), the run is replayed there so the canonical behaviour
    # and error come from the oracle.  This keeps the issued/consumed
    # comparison off the per-event hot path: it only runs at park,
    # finish, and error points.
    # ------------------------------------------------------------------
    def _drive() -> None:
        nonlocal events
        while True:
            while wl:
                pid = wl.popleft()
                queued[pid] = 0
                p = bps[pid]
                status = p.status
                if status == _D:
                    continue
                if status == _B:
                    # Flush-woken concrete waiter: the new stream row is the
                    # direct hand-off unless the timeout's key beats it.
                    s = p.streams.get((p.pend_src, p.pend_tag))
                    h = -1
                    if s is not None:
                        msgs = s.msgs
                        taken = s.taken
                        h = s.head
                        nm = len(msgs)
                        while h < nm and taken[h]:
                            h += 1
                        if h >= nm:
                            h = -1
                    if h < 0:
                        raise BatchFallback  # wake invariant violated
                    d = p.deadline
                    t0m = s.msgs[h][0]
                    if d is not None and (t0m > d or
                                          (t0m == d and p.pend_src > pid)):
                        _fire_timeout(p)
                    else:
                        _complete(p, s, h, p.pend_src, p.pend_tag, advance=True)
                resume = p.resume
                p.resume = None
                gen_send = p.gen.send
                issued = p.issued
                c = p.consumed
                while True:
                    try:
                        req = gen_send(resume)
                        # Hot spins: compute/send segments yield _OK,
                        # satisfied receives yield the delivered Message
                        # (resumed straight back in).  Neither touches the
                        # dispatch chain below.
                        while True:
                            if req is _OK:
                                events += 1
                                c += 1
                                req = gen_send(None)
                            elif req.__class__ is Message:
                                events += 1
                                c += 1
                                req = gen_send(req)
                            else:
                                break
                    except StopIteration as stop:
                        p.consumed = c
                        _finish(p, stop.value)
                        break
                    events += 1
                    # The issued/consumed comparison (closure calls the
                    # program never yielded) is deferred to the park/finish
                    # points and the error guard — zero cost per event.
                    rcls = req.__class__
                    if req is not _RECVQ:
                        # Raw request objects (api.Comm, reliable, collectives
                        # construct events directly) — route through the same
                        # closures so accounting and matching stay identical.
                        if rcls is not Compute and rcls is not Send \
                                and rcls is not Recv:
                            if isinstance(req, Compute):
                                rcls = Compute
                            elif isinstance(req, Send):
                                rcls = Send
                            elif isinstance(req, Recv):
                                rcls = Recv
                            else:
                                raise MachineError(
                                    f"processor {pid} yielded {req!r}; expected "
                                    f"Compute, Send or Recv (use `yield from` "
                                    f"for collectives)")
                        if issued[0] != c:
                            raise BatchFallback
                        if rcls is Compute:
                            sec = req.seconds
                            if sec.__class__ is not float:
                                sec = float(sec)
                            clock[pid] += sec
                            p.acc[_COMPUTE] += sec
                            resume = None
                            continue
                        if rcls is Send:
                            p.c_send(req.dst, req.payload, tag=req.tag,
                                     nbytes=req.nbytes,
                                     is_retransmit=req.is_retransmit)
                            c += 1
                            resume = None
                            continue
                        req = p.c_recv(req.src, tag=req.tag, timeout=req.timeout)
                        if req.__class__ is Message:
                            c += 1
                            resume = req
                            continue
                        # fall into the shared _RECVQ path
                    # _RECVQ: wildcard, miss, or timeout-armed receive.
                    c += 1
                    if issued[0] != c:
                        raise BatchFallback
                    rc = p.rcell
                    rs = rc[0]
                    rt = rc[1]
                    rto = rc[2]
                    if p.sbuf:
                        _flush(p)
                    if alive == 1:
                        if p.snap is None:
                            _enter_solo(p)
                            req = p.c_recv(rs, tag=rt, timeout=rto)
                            issued[0] -= 1  # re-probe of the same request
                            if req.__class__ is Message:
                                resume = req
                                continue
                        if rto is not None:
                            d = clock[pid] + rto
                            p.acc[_IDLE] += d - clock[pid]
                            p.acc[_TIMEOUTS] += 1
                            clock[pid] = d
                            resume = None
                            continue
                        p.consumed = c
                        raise DeadlockError(
                            f"deadlock: processors {[pid]} blocked on receives "
                            f"that can never be satisfied")
                    p.consumed = c
                    p.status = _B
                    p.pend_src = rs
                    p.pend_tag = rt
                    p.post = w = clock[pid]
                    p.deadline = None if rto is None else w + rto
                    break
            if alive == 0:
                break
            _quiesce()
    try:
        _drive()
    except (MachineError, DeadlockError):
        # Replay desynchronised runs on the oracle for canonical errors.
        for q in bps:
            if q.issued[0] != q.consumed:
                raise BatchFallback from None
        raise

    return RunResult(values=[p.value for p in bps], stats=stats,
                     trace=None, events=events, crashed=[])
