"""The plan interpreter: one SPMD loop executing a lowered plan.

This is the back half of the SCL compiler.  Every virtual processor runs
the *same* :class:`~repro.plan.ir.Plan` through :func:`execute_plan`,
indexing the precomputed communication tables with its own rank — there
is no per-processor tree-walk and no index-function evaluation at run
time.  The interpreter is a generator (like every machine program):
``yield`` s are simulator requests, the return value is the processor's
final local value (a :class:`~repro.plan.ir.Scalar` for reductions).

Group instructions maintain the same value discipline as the old
tree-walking compiler: ``GroupSplit`` wraps the local value in a
:class:`Grouped` frame carrying the subgroup communicator, ``SubPlan``
runs a nested plan inside that frame, and ``GroupCombine`` unwraps.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.machine import collectives as C
from repro.machine import collectives_ext as CX
from repro.machine import tags
from repro.machine.api import Comm
from repro.machine.cost import estimate_nbytes
from repro.machine.simulator import ProcEnv
from repro.plan import ir

__all__ = ["execute_plan", "Grouped", "EXCHANGE_TAG"]

#: Tag of all point-to-point plan traffic (rotate / exchange tables).
EXCHANGE_TAG = tags.reserve("plan", "exchange", 0)


@dataclasses.dataclass
class Grouped:
    """Marker value: this processor's slice of a split (nested) array."""

    comm: Comm
    parent: Comm
    local: Any
    gid: int


def execute_plan(plan: ir.Plan, env: ProcEnv, comm: Comm, local: Any,
                 default: float = ir.DEFAULT_FRAGMENT_OPS,
                 label: str = "plan"):
    """Run ``plan`` on this processor; returns the new local value.

    On a traced machine every simulator request executes inside a span
    stack ``label → [i] instruction → iter k → …`` (see
    :mod:`repro.machine.trace`), so each trace event is attributed to the
    plan instruction that produced it.  Untraced runs take the original
    span-free path — tracing off costs nothing.
    """
    if env.tracing:
        with env.span(label):
            return (yield from _run_seq_spanned(plan.instrs, plan, env, comm,
                                                local, default))
    return (yield from _run_seq(plan.instrs, plan, env, comm, local, default))


def _run_seq(instrs, plan: ir.Plan, env: ProcEnv, comm: Comm, local: Any,
             default: float):
    for instr in instrs:
        local = yield from _step(instr, plan, env, comm, local, default)
    return local


def _run_seq_spanned(instrs, plan: ir.Plan, env: ProcEnv, comm: Comm,
                     local: Any, default: float):
    for i, instr in enumerate(instrs):
        with env.span(ir.instr_title(instr), instr=i):
            local = yield from _step_spanned(instr, plan, env, comm, local,
                                             default)
    return local


def _step_spanned(instr: ir.Instr, plan: ir.Plan, env: ProcEnv, comm: Comm,
                  local: Any, default: float):
    """Like :func:`_step`, but loop iterations and nested plans keep
    pushing span frames (all leaf instructions delegate to ``_step``)."""
    if isinstance(instr, ir.Loop):
        for it, body in enumerate(instr.bodies):
            with env.span(f"iter {it}", iteration=it):
                local = yield from _run_seq_spanned(body, plan, env, comm,
                                                    local, default)
        return local
    if isinstance(instr, ir.SubPlan):
        subplan = instr.plans[local.gid]
        inner = yield from _run_seq_spanned(subplan.instrs, subplan, env,
                                            local.comm, local.local, default)
        return Grouped(local.comm, local.parent, inner, local.gid)
    return (yield from _step(instr, plan, env, comm, local, default))


def _step(instr: ir.Instr, plan: ir.Plan, env: ProcEnv, comm: Comm,
          local: Any, default: float):
    if isinstance(instr, ir.LocalApply):
        if isinstance(instr.fn, ir.FusedKernel):
            # each constituent charges on its actual input, so the single
            # Compute below equals the sum the unfused run would charge
            idx = (divmod(comm.rank, plan.grid[1])
                   if plan.grid is not None else comm.rank)
            result, ops = ir.apply_fused(instr.fn, idx, local, default)
            yield env.work(ops)
            return result
        yield env.work(ir.fragment_ops(instr.fn, local, default))
        if instr.indexed:
            idx = (divmod(comm.rank, plan.grid[1])
                   if plan.grid is not None else comm.rank)
            return instr.fn(idx, local)
        if instr.farm_env is not ir.NO_ENV:
            return instr.fn(instr.farm_env, local)
        return instr.fn(local)

    if isinstance(instr, ir.Rotate):
        p = comm.size
        k = instr.k
        yield comm.send((comm.rank - k) % p, local, tag=EXCHANGE_TAG,
                        nbytes=estimate_nbytes(local, env.spec.word_bytes))
        msg = yield comm.recv((comm.rank + k) % p, tag=EXCHANGE_TAG)
        return msg.payload

    if isinstance(instr, ir.Exchange):
        r = comm.rank
        for dst in instr.sends[r]:
            yield comm.send(dst, local, tag=EXCHANGE_TAG,
                            nbytes=estimate_nbytes(local,
                                                   env.spec.word_bytes))
        if instr.mode == "collect":
            arrivals = []
            for src in instr.recvs[r]:
                if src == r:
                    arrivals.append(local)
                else:
                    msg = yield comm.recv(src, tag=EXCHANGE_TAG)
                    arrivals.append(msg.payload)
            return arrivals
        (src,) = instr.recvs[r]
        if src == r:
            fetched = local
        else:
            msg = yield comm.recv(src, tag=EXCHANGE_TAG)
            fetched = msg.payload
        if instr.mode == "pair":
            return (local, fetched)
        return fetched

    if isinstance(instr, ir.Collective):
        return (yield from _collective(instr, env, comm, local, default))

    if isinstance(instr, ir.GroupSplit):
        gid = instr.group_of[comm.rank]
        sub = comm.subgroup(list(instr.groups[gid]))
        return Grouped(sub, comm, local, gid)

    if isinstance(instr, ir.SubPlan):
        subplan = instr.plans[local.gid]
        inner = yield from _run_seq(subplan.instrs, subplan, env, local.comm,
                                    local.local, default)
        return Grouped(local.comm, local.parent, inner, local.gid)

    if isinstance(instr, ir.GroupCombine):
        return local.local

    if isinstance(instr, ir.Loop):
        for body in instr.bodies:
            local = yield from _run_seq(body, plan, env, comm, local, default)
        return local

    raise AssertionError(f"unknown plan instruction {instr!r}")


def _bcast_algo(algo: str, comm: Comm, value: Any, root: int = 0):
    """The broadcast generator for a :class:`~repro.plan.ir.Collective`
    ``algo`` — binomial tree by default, flat/chain when the optimizer's
    collective selection rewrote the schedule."""
    if algo == "flat":
        return CX.flat_bcast(comm, value, root=root)
    if algo == "ring":
        return CX.chain_bcast(comm, value, root=root)
    return C.bcast(comm, value, root=root)


def _collective(instr: ir.Collective, env: ProcEnv, comm: Comm, local: Any,
                default: float):
    # Reduction operators run synchronously inside the collectives'
    # generator frames, so their CPU cost cannot be yielded from here; the
    # message rounds carry the synchronisation cost (plan_cost prices the
    # combines analytically).
    algo = instr.algo
    if instr.kind == "fold":
        if algo == "flat":
            acc = yield from CX.flat_reduce(comm, local, instr.op)
            acc = yield from CX.flat_bcast(comm, acc, root=0)
        else:
            acc = yield from C.reduce(comm, local, instr.op)
            acc = yield from C.bcast(comm, acc, root=0)
        return ir.Scalar(acc)
    if instr.kind == "scan":
        if algo == "ring":
            return (yield from CX.chain_scan(comm, local, instr.op))
        return (yield from C.scan(comm, local, instr.op))
    if instr.kind == "bcast":
        value = yield from _bcast_algo(
            algo, comm, instr.value if comm.rank == 0 else None)
        return (value, local)
    if instr.kind == "apply_bcast":
        if comm.rank == instr.root:
            yield env.work(ir.fragment_ops(instr.op, local, default))
            piece = instr.op(local)
        else:
            piece = None
        piece = yield from _bcast_algo(algo, comm, piece, root=instr.root)
        return (piece, local)
    raise AssertionError(f"unknown collective kind {instr.kind!r}")
