"""Crash-aware collectives over a :class:`~repro.machine.reliable.ReliableChannel`.

The tree collectives in :mod:`repro.machine.collectives` assume a perfect
machine: one crashed member deadlocks the whole tree.  These variants trade
the O(log p) round count for **linear, root-coordinated** patterns in which
every edge is a reliable (acked, retransmitted) transfer with a timeout, so
a dead member costs a bounded wait instead of a hang:

* a dead *non-root* member degrades the result to the survivors —
  ``ft_gather`` returns ``None`` in the dead member's slot, ``ft_reduce``
  folds over the surviving contributions, ``ft_barrier`` synchronises the
  survivors;
* a dead *root* is unrecoverable for that operation: members raise a
  structured :class:`~repro.errors.FaultError` (``kind="root-dead"``) that
  a fault-tolerant runtime can catch and act on.

Each member passes its own channel; calls must be made in the same order
on every member (normal collective discipline).  The fault-free behaviour
matches the plain collectives' results exactly — only the message pattern
(and therefore the virtual cost) differs.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import FaultError, MachineError
from repro.machine import tags
from repro.machine.api import Comm
from repro.machine.reliable import ReliableChannel

__all__ = ["ft_bcast", "ft_scatter", "ft_gather", "ft_reduce",
           "ft_allreduce", "ft_barrier"]

# Tags disjoint per operation so back-to-back collectives cannot confuse
# each other's frames; reserved centrally so no other subsystem can reuse
# them (the SCL compiler's exchange tag once collided with the bcast tag).
_TAG_FT_BCAST = tags.reserve("collectives-ft", "bcast", 0)
_TAG_FT_GATHER = tags.reserve("collectives-ft", "gather", 1)
_TAG_FT_BARRIER_IN = tags.reserve("collectives-ft", "barrier-in", 2)
_TAG_FT_BARRIER_OUT = tags.reserve("collectives-ft", "barrier-out", 3)
_TAG_FT_SCATTER = tags.reserve("collectives-ft", "scatter", 4)

Gen = Generator[Any, Any, Any]


def _check_root(comm: Comm, root: int) -> None:
    if not (0 <= root < comm.size):
        raise MachineError(f"root {root} out of range for size-{comm.size} comm")


def _member_timeout(chan: ReliableChannel, comm: Comm,
                    timeout: float | None) -> float:
    """How long a member waits on the root before presuming it dead.

    The root serves members *linearly*, and each edge may burn the full
    retransmission budget, so the default scales with the group size.
    """
    if timeout is not None:
        return timeout
    return chan.worst_case_send_seconds() * (comm.size + 1)


def ft_bcast(chan: ReliableChannel, comm: Comm, value: Any = None, *,
             root: int = 0, timeout: float | None = None) -> Gen:
    """Broadcast ``value`` from ``root``; returns it on every live member.

    Dead non-root members are skipped (the root absorbs their
    ``peer-dead`` errors).  If the root is dead, waiting members raise
    :class:`FaultError` (``kind="root-dead"``).
    """
    _check_root(comm, root)
    if comm.size == 1:
        return value
    if comm.rank == root:
        for r in range(comm.size):
            if r == root:
                continue
            try:
                yield from chan.send(comm.pid_of(r), value, tag=_TAG_FT_BCAST)
            except FaultError:
                continue  # dead member: the survivors proceed
        return value
    root_pid = comm.pid_of(root)
    try:
        return (yield from chan.recv(root_pid, tag=_TAG_FT_BCAST,
                                     timeout=_member_timeout(chan, comm,
                                                             timeout)))
    except FaultError as exc:
        raise FaultError(
            f"rank {comm.rank}: broadcast root rank {root} (pid {root_pid}) "
            f"presumed dead ({exc.kind})", kind="root-dead", pid=root_pid,
            rank=root) from exc


def ft_scatter(chan: ReliableChannel, comm: Comm, values: Any = None, *,
               root: int = 0, timeout: float | None = None) -> Gen:
    """Scatter one value per member from ``root``; returns each member's.

    ``values`` (root only) is a rank-indexed sequence of length
    ``comm.size``.  Dead non-root members are skipped; members raise
    :class:`FaultError` (``kind="root-dead"``) if the root never serves
    them.
    """
    _check_root(comm, root)
    if comm.size == 1:
        return values[0]
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise MachineError(
                f"scatter root needs one value per member "
                f"({comm.size}), got "
                f"{'none' if values is None else len(values)}")
        for r in range(comm.size):
            if r == root:
                continue
            try:
                yield from chan.send(comm.pid_of(r), values[r],
                                     tag=_TAG_FT_SCATTER)
            except FaultError:
                continue  # dead member: the survivors proceed
        return values[root]
    root_pid = comm.pid_of(root)
    try:
        return (yield from chan.recv(root_pid, tag=_TAG_FT_SCATTER,
                                     timeout=_member_timeout(chan, comm,
                                                             timeout)))
    except FaultError as exc:
        raise FaultError(
            f"rank {comm.rank}: scatter root rank {root} (pid {root_pid}) "
            f"presumed dead ({exc.kind})", kind="root-dead", pid=root_pid,
            rank=root) from exc


def ft_gather(chan: ReliableChannel, comm: Comm, value: Any, *,
              root: int = 0, timeout: float | None = None) -> Gen:
    """Gather one value per member to ``root``, degrading to survivors.

    The root returns a rank-ordered list with ``None`` in the slots of
    members it could not hear from; other live members return ``None``.
    Members raise ``kind="root-dead"`` if the root never acks them.
    """
    _check_root(comm, root)
    if comm.size == 1:
        return [value]
    if comm.rank != root:
        root_pid = comm.pid_of(root)
        try:
            yield from chan.send(root_pid, (comm.rank, value),
                                 tag=_TAG_FT_GATHER)
        except FaultError as exc:
            raise FaultError(
                f"rank {comm.rank}: gather root rank {root} (pid "
                f"{root_pid}) presumed dead ({exc.kind})", kind="root-dead",
                pid=root_pid, rank=root) from exc
        return None
    out: list[Any] = [None] * comm.size
    out[root] = value
    per_peer = (timeout if timeout is not None
                else chan.worst_case_send_seconds() * 2.0)
    for r in range(comm.size):
        if r == root:
            continue
        try:
            rank, payload = yield from chan.recv(
                comm.pid_of(r), tag=_TAG_FT_GATHER, timeout=per_peer)
        except FaultError:
            continue  # dead member: leave its slot as None
        out[rank] = payload
    return out


def ft_reduce(chan: ReliableChannel, comm: Comm, value: Any,
              op: Callable[[Any, Any], Any], *, root: int = 0,
              timeout: float | None = None) -> Gen:
    """Reduce over the *surviving* members' values, result on ``root``.

    Contributions are combined in rank order (associativity suffices, as
    for the plain ``reduce``); dead members' contributions are simply
    absent.  Raises ``kind="no-survivors"`` only in the degenerate case
    where every contribution was lost (cannot happen: the root's own value
    always survives).
    """
    gathered = yield from ft_gather(chan, comm, value, root=root,
                                    timeout=timeout)
    if comm.rank != root and comm.size > 1:
        return None
    present = [v for v in gathered if v is not None]
    if not present:
        raise FaultError("reduce found no surviving contributions",
                         kind="no-survivors")
    acc = present[0]
    for v in present[1:]:
        acc = op(acc, v)
    return acc


def ft_allreduce(chan: ReliableChannel, comm: Comm, value: Any,
                 op: Callable[[Any, Any], Any], *, root: int = 0,
                 timeout: float | None = None) -> Gen:
    """Survivor-degrading reduction whose result reaches every live member."""
    acc = yield from ft_reduce(chan, comm, value, op, root=root,
                               timeout=timeout)
    return (yield from ft_bcast(chan, comm, acc, root=root, timeout=timeout))


def ft_barrier(chan: ReliableChannel, comm: Comm, *, root: int = 0,
               timeout: float | None = None) -> Gen:
    """Synchronise the surviving members (dead ones are waited-out, once).

    No live member leaves before every *live* member has entered; crashed
    members cost the root one bounded timeout each.  Raises
    ``kind="root-dead"`` on members when the coordinator has crashed.
    """
    _check_root(comm, root)
    if comm.size == 1:
        return None
    if comm.rank != root:
        root_pid = comm.pid_of(root)
        try:
            yield from chan.send(root_pid, comm.rank, tag=_TAG_FT_BARRIER_IN)
            yield from chan.recv(root_pid, tag=_TAG_FT_BARRIER_OUT,
                                 timeout=_member_timeout(chan, comm, timeout))
        except FaultError as exc:
            raise FaultError(
                f"rank {comm.rank}: barrier root rank {root} (pid "
                f"{root_pid}) presumed dead ({exc.kind})", kind="root-dead",
                pid=root_pid, rank=root) from exc
        return None
    per_peer = (timeout if timeout is not None
                else chan.worst_case_send_seconds() * 2.0)
    entered: list[int] = []
    for r in range(comm.size):
        if r == root:
            continue
        try:
            rank = yield from chan.recv(comm.pid_of(r),
                                        tag=_TAG_FT_BARRIER_IN,
                                        timeout=per_peer)
            entered.append(rank)
        except FaultError:
            continue
    for rank in entered:
        try:
            yield from chan.send(comm.pid_of(rank), None,
                                 tag=_TAG_FT_BARRIER_OUT)
        except FaultError:
            continue
    return None
