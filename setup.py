"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file exists so `pip install -e .`
can fall back to the legacy `setup.py develop` code path when PEP 517
editable builds are unavailable (offline machines without `wheel`).
"""

from setuptools import setup

setup()
