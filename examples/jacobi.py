#!/usr/bin/env python3
"""Jacobi iteration — iter_until + halo exchange with fetch.

A 2-D Laplace solve with a hot top edge: the grid is partitioned into row
blocks, each sweep fetches neighbour boundary rows (two `fetch` skeletons),
applies the local five-point stencil (`imap`), and convergence is a
`fold (max)` over block residuals driving `iter_until`.

Run:  python examples/jacobi.py [n] [p]
"""

import sys

import numpy as np

from repro.apps.stencil import jacobi_seq, jacobi_solve


def render(grid, levels=" .:-=+*#%@"):
    lo, hi = grid.min(), grid.max()
    span = (hi - lo) or 1.0
    rows = []
    for row in grid[:: max(1, grid.shape[0] // 16)]:
        cells = ((row - lo) / span * (len(levels) - 1)).astype(int)
        rows.append("".join(levels[c] for c in cells[:: max(1, grid.shape[1] // 48)]))
    return "\n".join(rows)


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    p = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    grid = np.zeros((n, n))
    grid[0, :] = 100.0  # hot top edge

    print(f"Jacobi Laplace solve on a {n}x{n} grid, {p} row blocks\n")
    ref = jacobi_seq(grid, tol=1e-4)
    par = jacobi_solve(grid, p, tol=1e-4)

    print(f"sequential: {ref.iterations} iterations, residual {ref.residual:.2e}")
    print(f"parallel:   {par.iterations} iterations, residual {par.residual:.2e}")
    print(f"identical results: {bool(np.allclose(ref.grid, par.grid, atol=1e-12))}\n")
    print("temperature field (hot edge on top):")
    print(render(par.grid))


if __name__ == "__main__":
    main()
