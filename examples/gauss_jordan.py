#!/usr/bin/env python3
"""Gauss–Jordan linear solver — the paper's §3 first example.

Solves ``Ax = b`` with the SCL program from the paper (column-block
distribution, ``iterFor`` main loop, ``applybrdcast`` pivot distribution,
``map UPDATE`` parallel elimination), checks it against NumPy, and shows
the machine-level scaling on the simulated AP1000.

Run:  python examples/gauss_jordan.py [n]
"""

import sys

import numpy as np

from repro.apps.linalg import gauss_jordan_machine, gauss_jordan_seq, gauss_jordan_solve
from repro.machine import AP1000


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    rng = np.random.default_rng(7)
    A = rng.standard_normal((n, n)) + n * np.eye(n)
    b = rng.standard_normal(n)
    x_ref = np.linalg.solve(A, b)

    print(f"Solving a {n}x{n} system with Gauss-Jordan + partial pivoting\n")

    x_seq = gauss_jordan_seq(A, b)
    print(f"sequential reference     max|x - numpy| = "
          f"{np.max(np.abs(x_seq - x_ref)):.2e}")

    for p in (2, 4, 8):
        x = gauss_jordan_solve(A, b, p)
        print(f"skeleton program (p={p})   max|x - numpy| = "
              f"{np.max(np.abs(x - x_ref)):.2e}")

    print(f"\nmachine-level scaling on the simulated {AP1000.name}:")
    print(f"   {'procs':>5}  {'runtime (s)':>12}  {'speedup':>8}")
    t1 = None
    for p in (1, 2, 4, 8, 16, 32):
        x, res = gauss_jordan_machine(A, b, p, spec=AP1000)
        assert np.allclose(x, x_ref)
        t1 = t1 or res.makespan
        print(f"   {p:>5}  {res.makespan:>12.4f}  {t1 / res.makespan:>8.2f}")

    print("\nThe SCL program (paper §3):")
    print("  gauss A p = iterFor n elimPivot (partition col_block_p [A|b])")
    print("  elimPivot i x = map (UPDATE i) (applybrdcast (PARTIAL_PIVOT i) owner x)")


if __name__ == "__main__":
    main()
