#!/usr/bin/env python3
"""Map/reduce word count — data-parallel composition on non-numeric data.

The skeleton vocabulary is not tied to arrays of numbers: here the
"SeqArray" leaves are chunks of text, the map fragment builds local
histograms, and `fold` merges them with an associative dictionary union —
the map/reduce motif expressed exactly as the paper composes programs
(`fold merge . map count . partition block_p`).

Run:  python examples/wordcount_mapreduce.py
"""

import collections
import operator

from repro.core import Block, ParArray, fold, parmap, partition
from repro.lang import parse_scl
from repro.scl import evaluate

TEXT = """
in this paper we propose a straightforward solution to the problems of
compositional parallel programming by using skeletons as the uniform
mechanism for structured composition parallel programs are constructed
by composing procedures in a conventional base language using a set of
high level predefined functional parallel computational forms known as
skeletons the ability to compose skeletons provides us with the
essential tools for building further and more complex application
oriented skeletons specifying important aspects of parallel computation
""".split()


def count(words):
    """Base-language fragment: histogram of one chunk."""
    return collections.Counter(words)


def merge(a, b):
    """Associative (and commutative) histogram union."""
    out = collections.Counter(a)
    out.update(b)
    return out


def main():
    p = 6
    print(f"word count over {len(TEXT)} words on {p} virtual processors\n")

    # 1. direct skeleton composition
    chunks = partition(Block(p), TEXT)
    totals = fold(merge, parmap(count, chunks))
    top = totals.most_common(5)
    print("skeleton pipeline:  fold merge . map count . partition block")
    for word, n in top:
        print(f"   {word:<12} {n}")

    # 2. the same program in textual SCL
    prog = parse_scl("fold merge . map count . partition block(6)",
                     {"merge": merge, "count": count})
    parsed_totals = evaluate(prog, TEXT)
    assert parsed_totals == totals
    print("\ntextual SCL program gives identical counts:", parsed_totals == totals)

    # 3. sanity: sequential reference
    reference = collections.Counter(TEXT)
    print("matches sequential Counter:", totals == reference)


if __name__ == "__main__":
    main()
