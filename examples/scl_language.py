#!/usr/bin/env python3
"""The textual SCL front end — the paper's "FortranS" direction.

Parallel structure is written in SCL's own notation; base-language
fragments are plain Python functions bound by name.  Parsed programs are
ordinary skeleton expressions: they evaluate, rewrite under the §4 rules,
and compile onto the simulated AP1000.

Run:  python examples/scl_language.py
"""

import operator

from repro.core import ParArray
from repro.lang import parse_scl
from repro.machine import AP1000, Hypercube, Machine
from repro.scl import default_engine, evaluate, pretty, run_expression

# ---------------------------------------------------------------- fragments
# the "base language" side of the two-tier model: ordinary Python

ENV = {
    "add": operator.add,
    "square": lambda x: x * x,
    "inc": lambda x: x + 1,
    "halve": lambda x: x // 2,
    "left": lambda i: (i + 1) % 8,
}


def main():
    pa = ParArray([3, 1, 4, 1, 5, 9, 2, 6])

    print("1. parse and evaluate")
    src = "fold add . map square . rotate 2"
    prog = parse_scl(src, ENV)
    print(f"   source:    {src}")
    print(f"   parsed:    {pretty(prog)}")
    print(f"   result:    {evaluate(prog, pa)}")

    print("\n2. parsed programs transform under the §4 rules")
    src = """
        map inc . map halve      -- two farm stages: fuse them
        . rotate 3 . rotate -2   -- two communications: combine them
    """
    prog = parse_scl(src, ENV)
    optimised, steps = default_engine().rewrite(prog)
    print(f"   parsed:    {pretty(prog)}")
    print(f"   optimised: {pretty(optimised)}")
    for s in steps:
        print(f"     rule: {s.rule}")
    assert evaluate(prog, pa) == evaluate(optimised, pa)

    print("\n3. parsed programs compile to the simulated machine")
    src = "scan add . map square . fetch left"
    prog = parse_scl(src, ENV)
    machine = Machine(Hypercube(3), spec=AP1000)
    out, res = run_expression(prog, pa, machine)
    print(f"   source:    {src}")
    print(f"   result:    {out.to_list()}")
    print(f"   virtual:   {res.makespan * 1e3:.3f} ms on {res.nprocs} procs, "
          f"{res.total_messages} messages")

    print("\n4. nested parallelism: processor groups in the text")
    src = "combine . map (rotate 1 . map inc) . split block(2)"
    prog = parse_scl(src, ENV)
    print(f"   source:    {src}")
    print(f"   sequential ParArray semantics: {evaluate(prog, pa).to_list()}")
    out, res = run_expression(prog, pa, machine)
    print(f"   compiled machine execution:    {out.to_list()}")

    print("\n5. the paper's SPMD notation")
    src = "SPMD [(rotate 1, inc), (id, square)]"
    prog = parse_scl(src, ENV)
    print(f"   source:    {src}")
    print(f"   parsed:    {pretty(prog)}")
    print(f"   result:    {evaluate(prog, ParArray([1, 2, 3])).to_list()}")

    print("\n6. named phases with let-bindings")
    src = """
        let prepare = map square . rotate 1 in
        let reduce  = fold add in
        reduce . prepare
    """
    prog = parse_scl(src, ENV)
    print(f"   parsed:    {pretty(prog)}")
    print(f"   result:    {evaluate(prog, pa)}")


if __name__ == "__main__":
    main()
