#!/usr/bin/env python3
"""Fault-tolerant sorting on a lossy simulated machine.

The paper's machine never drops a message and never loses a cell.  This
example injects both kinds of failure and shows the resilience layers
keeping the answer correct:

1. hyperquicksort over the reliable (ack/retransmit) channel while the
   network drops, duplicates, and delays messages — same sorted output,
   measurable makespan penalty, nonzero retransmit counters;
2. a fault-tolerant farm (map) surviving *worker crashes* through work
   reassignment, and a *master crash* through checkpoint/restart.

Everything is deterministic: rerun with the same seed and you get the
same drops, the same retransmissions, and the same makespans.

Run:  python examples/fault_tolerant_sort.py [n]
"""

import sys

import numpy as np

from repro.faults import (
    CheckpointStore,
    FaultSpec,
    ft_hyperquicksort_machine,
    ft_map_machine,
)
from repro.machine import AP1000
from repro.machine.metrics import fault_counters


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    rng = np.random.default_rng(1995)
    values = rng.integers(0, 2**31, size=n).astype(np.int64)
    expected = np.sort(values)
    d = 3  # 8 simulated processors

    print(f"Sorting {n} random integers on a lossy simulated "
          f"{AP1000.name} (p = {1 << d})\n")

    print("1. hyperquicksort over the reliable channel:")
    baseline = None
    for drop in (0.0, 0.01, 0.05):
        spec = FaultSpec(seed=7, drop_rate=drop, dup_rate=drop / 2,
                         delay_rate=drop, delay_seconds=0.001)
        out, res = ft_hyperquicksort_machine(values, d, faults=spec)
        ok = bool(np.array_equal(out, expected))
        counters = fault_counters(res)
        if baseline is None:
            baseline = res.makespan
        print(f"   drop={drop:4.0%}  sorted={ok}  "
              f"makespan={res.makespan:.4f}s "
              f"({res.makespan / baseline:4.2f}x)  "
              f"retransmits={counters['retransmits']:3d}  "
              f"dropped={counters['dropped']:3d}")

    print("\n2. fault-tolerant farm: squaring 32 blocks on 8 processors")
    jobs = [values[i::32] for i in range(32)]
    expected_sums = [int(np.sum(j.astype(np.int64) ** 2)) for j in jobs]

    print("   a) two workers crash mid-run (jobs reassigned):")
    spec = FaultSpec(seed=7, crash_at={3: 0.004, 5: 0.002})
    results, runs = ft_map_machine(
        jobs, lambda b: int(np.sum(b.astype(np.int64) ** 2)),
        nprocs=8, faults=spec, cost_fn=lambda b: 3.0 * len(b))
    print(f"      correct={results == expected_sums}  "
          f"crashed={runs[-1].crashed}  restarts={len(runs) - 1}")

    print("   b) the *master* crashes (checkpoint/restart):")
    store = CheckpointStore()
    spec = FaultSpec(seed=7, crash_at={0: 0.01})
    results, runs = ft_map_machine(
        jobs, lambda b: int(np.sum(b.astype(np.int64) ** 2)),
        nprocs=8, faults=spec, cost_fn=lambda b: 3.0 * len(b),
        checkpoint=store)
    print(f"      correct={results == expected_sums}  "
          f"attempts={len(runs)}  "
          f"jobs committed before restart were skipped: "
          f"{len(store)} total commits")

    print("\nSee `python -m repro chaos --help` for the sweeping harness.")


if __name__ == "__main__":
    main()
