#!/usr/bin/env python3
"""The §4 transformation rules, demonstrated one by one.

Each section builds a program as a skeleton expression, rewrites it with
one of the paper's laws, shows the before/after in SCL notation, proves
semantic equality on sample data, and reports the cost model's prediction
on the simulated AP1000.

Run:  python examples/transformations.py
"""

import operator

from repro.core import Block, ParArray
from repro.machine import AP1000
from repro.scl import (
    Fetch,
    FoldrFused,
    Map,
    Rotate,
    Spmd,
    Split,
    Stage,
    compose_nodes,
    default_engine,
    estimate_cost,
    evaluate,
    optimize,
    pretty,
)

PA = ParArray([3, 1, 4, 1, 5, 9, 2, 6])
ENGINE = default_engine()


def show(title, prog, n=64, fn_ops=50):
    out, steps = ENGINE.rewrite(prog)
    print(f"\n--- {title} " + "-" * max(0, 55 - len(title)))
    print("  before:", pretty(prog))
    print("  after: ", pretty(out))
    for s in steps:
        print("  rule:  ", s.rule)
    before = estimate_cost(prog, n=n, spec=AP1000, fn_ops=fn_ops)
    after = estimate_cost(out, n=n, spec=AP1000, fn_ops=fn_ops)
    print(f"  predicted: {before.seconds:.3e}s -> {after.seconds:.3e}s "
          f"({before.messages}->{after.messages} msgs, "
          f"{before.barriers}->{after.barriers} barriers)")
    same = evaluate(prog, PA) == evaluate(out, PA)
    print(f"  semantics preserved on sample data: {same}")
    return out


def main():
    print("Meaning-preserving transformations (paper §4)")

    show("map fusion: map f . map g = map (f . g)",
         compose_nodes(Map(lambda x: x + 1), Map(lambda x: x * 2)))

    show("map distribution: foldr (f . g) = fold f . map g",
         FoldrFused(operator.add, lambda x: x * x, op_associative=True))

    show("communication algebra: fetch f . fetch g = fetch (g . f)",
         compose_nodes(Fetch(lambda i: (i + 1) % 8),
                       Fetch(lambda i: (i * 3) % 8), ), n=8)

    show("rotation algebra: rotate j . rotate k = rotate (j + k)",
         compose_nodes(Rotate(3), Rotate(5), Rotate(-8)), n=8)

    show("SPMD flattening: nested SPMD -> flat segmented SPMD",
         compose_nodes(
             Spmd((Stage(global_=Map(lambda s: s)),)),
             Map(Spmd((Stage(global_=Rotate(1), local=lambda x: x * 2),))),
             Split(Block(2)),
         ), n=8)

    print("\n--- cost-guided optimisation " + "-" * 28)
    prog = FoldrFused(operator.add, lambda x: x, op_associative=True)
    cheap = optimize(prog, n=256, spec=AP1000, fn_ops=1)
    dear = optimize(prog, n=256, spec=AP1000, fn_ops=500)
    print("  trivial elements (1 op):   rewrite accepted =", cheap.accepted,
          "(latency dominates — stay sequential)")
    print("  heavy elements (500 ops):  rewrite accepted =", dear.accepted,
          f"(predicted speedup {dear.speedup:.1f}x)")


if __name__ == "__main__":
    main()
