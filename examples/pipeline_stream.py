#!/usr/bin/env python3
"""Stream and pipeline skeletons — the task-parallel layer.

A small image-ish processing chain (decode → transform → encode) run
three ways: sequentially, as a thread pipeline (stage overlap), and on the
simulated machine with one stage per processor, where the textbook
fill/drain law T ≈ (m + s - 1)·t_stage is directly observable.

Run:  python examples/pipeline_stream.py
"""

import time

import numpy as np

from repro.machine import PERFECT
from repro.stream import PipelineStage, pipeline, pipeline_machine, stream_farm, stream_map
from repro.runtime import ThreadExecutor


def decode(seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((64, 64))


def transform(img):
    return np.fft.irfft2(np.fft.rfft2(img) * 0.5, s=img.shape)


def encode(img):
    return float(np.abs(img).sum())


def main():
    items = list(range(40))

    print("1. ordered stream map (results always in input order)")
    with ThreadExecutor(max_workers=4) as ex:
        checksums = list(stream_map(lambda s: encode(transform(decode(s))),
                                    items, executor=ex))
    print(f"   processed {len(checksums)} frames; first 3: "
          f"{[f'{c:.2f}' for c in checksums[:3]]}")

    print("\n2. thread pipeline: decode | transform | encode")
    start = time.perf_counter()
    piped = list(pipeline([decode, transform, encode])(items))
    t_pipe = time.perf_counter() - start
    start = time.perf_counter()
    seq = [encode(transform(decode(s))) for s in items]
    t_seq = time.perf_counter() - start
    assert piped == seq
    print(f"   identical results; sequential {t_seq * 1e3:.1f} ms, "
          f"pipelined {t_pipe * 1e3:.1f} ms")

    print("\n3. unordered farm (throughput mode, order unspecified)")
    with ThreadExecutor(max_workers=4) as ex:
        unordered = list(stream_farm(lambda s: encode(decode(s)), items,
                                     executor=ex, ordered=False))
    print(f"   same multiset of results: {sorted(unordered) == sorted(encode(decode(s)) for s in items)}")

    print("\n4. the fill/drain law on the simulated machine")
    ops = 10_000.0
    t_stage = PERFECT.compute_time(ops)
    for s, m in [(2, 10), (4, 10), (4, 40)]:
        stages = [PipelineStage(lambda x: x, ops=ops)] * s
        _out, res = pipeline_machine(stages, list(range(m)), spec=PERFECT)
        law = (m + s - 1) * t_stage
        print(f"   s={s} stages, m={m:>2} items:  T = {res.makespan * 1e3:7.3f} ms"
              f"   (m+s-1)*t = {law * 1e3:7.3f} ms")


if __name__ == "__main__":
    main()
