#!/usr/bin/env python3
"""Quickstart: the SCL skeleton library in five minutes.

Walks through the three skeleton families of the paper on small data:
configuration (partition/align/gather), elementary (parmap/fold/scan and
the communication skeletons), and computational (farm/spmd/iter_for) —
then shows the same program as a rewritable expression.

Run:  python examples/quickstart.py
"""

import operator

import numpy as np

from repro import (
    Block,
    Cyclic,
    ParArray,
    align,
    brdcast,
    farm,
    fetch,
    fold,
    gather,
    imap,
    iter_for,
    parmap,
    partition,
    rotate,
    scan,
    spmd,
)


def section(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main():
    section("1. ParArray: the distributed data structure")
    pa = ParArray([3, 1, 4, 1, 5, 9, 2, 6])
    print("ParArray of 8 components (one per virtual processor):", pa.to_list())

    section("2. Configuration skeletons: partition / gather")
    data = list(range(10))
    blocks = partition(Block(3), data)
    print("block-partitioned over 3 processors:", blocks.to_list())
    print("cyclic-partitioned:", partition(Cyclic(3), data).to_list())
    print("gather inverts the partition:", gather(blocks))

    section("3. Elementary skeletons: parmap / fold / scan")
    squares = parmap(lambda x: x * x, pa)
    print("map square:", squares.to_list())
    print("fold (+):  ", fold(operator.add, squares))
    print("scan (+):  ", scan(operator.add, pa).to_list())
    print("imap:      ", imap(lambda i, x: f"p{i}:{x}", pa).to_list())

    section("4. Communication skeletons: rotate / brdcast / fetch")
    print("rotate 2:   ", rotate(2, pa).to_list())
    print("brdcast 'v':", brdcast("v", ParArray([1, 2, 3])).to_list())
    print("fetch i+1:  ", fetch(lambda i: (i + 1) % 8, pa).to_list())

    section("5. Computational skeletons: farm / spmd / iter_for")
    jobs = ParArray([10, 20, 30, 40])
    print("farm (env +):", farm(lambda env, x: env + x, 1000, jobs).to_list())
    pipeline = spmd([
        (None, lambda _i, x: x * 2),             # local stage
        (lambda c: rotate(1, c), None),          # global stage (communication)
    ])
    print("spmd pipeline:", pipeline(jobs).to_list())
    print("iter_for 3 (rotate):",
          iter_for(3, lambda i, c: rotate(1, c), jobs).to_list())

    section("6. A complete data-parallel program: distributed dot product")
    rng = np.random.default_rng(0)
    x, y = rng.standard_normal(1000), rng.standard_normal(1000)
    conf = align(partition(Block(8), x), partition(Block(8), y))
    partials = parmap(lambda ab: float(np.dot(ab[0], ab[1])), conf)
    print(f"skeleton dot = {fold(operator.add, partials):.6f}")
    print(f"numpy    dot = {float(np.dot(x, y)):.6f}")

    section("7. Programs as data: the transformation layer (see §4)")
    from repro.scl import Map, Rotate, compose_nodes, default_engine, pretty

    prog = compose_nodes(Map(lambda v: v + 1), Map(lambda v: v * 2),
                         Rotate(3), Rotate(-2))
    optimised, steps = default_engine().rewrite(prog)
    print("original: ", pretty(prog))
    print("optimised:", pretty(optimised))
    for s in steps:
        print("  applied rule:", s.rule)
    print("same result:", optimised(pa) == prog(pa))


if __name__ == "__main__":
    main()
