#!/usr/bin/env python3
"""Hyperquicksort — the paper's §3/§5 example, end to end.

Shows all three renderings of the algorithm and regenerates a small version
of the paper's evaluation:

1. the recursive nested-parallel SCL program,
2. the flattened iterative SPMD program (§5's transformation output),
3. the hand-compiled message-passing program on the simulated AP1000,
   with a Table-1-style runtime/speedup report,
4. the Figure 2 stage-by-stage trace on 32 values over 4 processors.

Run:  python examples/hyperquicksort.py [n]
"""

import sys

import numpy as np

from repro.apps.sort import (
    hyperquicksort,
    hyperquicksort_flat,
    hyperquicksort_machine,
    hyperquicksort_trace,
    sequential_sort_machine,
)
from repro.machine import AP1000


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    rng = np.random.default_rng(1995)
    values = rng.integers(0, 2**31, size=n).astype(np.int32)
    expected = np.sort(values)

    print(f"Sorting {n} random integers on simulated hypercubes\n")

    print("1. recursive SCL program (3-dim hypercube):")
    out = hyperquicksort(values, 3)
    print("   sorted correctly:", bool(np.array_equal(out, expected)))

    print("2. flattened iterative SPMD program (§5):")
    out = hyperquicksort_flat(values, 3)
    print("   sorted correctly:", bool(np.array_equal(out, expected)))

    print(f"\n3. machine-level run on the simulated {AP1000.name} "
          f"(Table 1 / Figure 3):")
    _s, seq = sequential_sort_machine(values, spec=AP1000)
    print(f"   {'procs':>5}  {'runtime (s)':>12}  {'speedup':>8}  {'eff':>5}")
    print(f"   {1:>5}  {seq.makespan:>12.3f}  {1.0:>8.2f}  {'100%':>5}")
    for d in range(1, 6):
        out, res = hyperquicksort_machine(values, d, spec=AP1000)
        assert np.array_equal(out, expected)
        sp = seq.makespan / res.makespan
        print(f"   {1 << d:>5}  {res.makespan:>12.3f}  {sp:>8.2f}  "
              f"{sp / (1 << d):>5.0%}")

    print("\n4. Figure 2 trace: 32 values on a 2-dim hypercube")
    small = rng.integers(1, 100, size=32)
    for panel, snap in zip("abcdefgh", hyperquicksort_trace(small, 2)):
        print(f"   ({panel}) {snap.label}")
        for pid, contents in enumerate(snap.contents):
            shown = " ".join(str(int(v)) for v in contents)
            print(f"       p{pid}: {shown}")


if __name__ == "__main__":
    main()
