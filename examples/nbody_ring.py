#!/usr/bin/env python3
"""N-body forces on a systolic ring — the `rotate` skeleton at work.

All-pairs gravitational forces with the visiting-block rotation pipeline:
p rounds of local block-vs-block interaction, each followed by rotating
the visiting blocks one position.  Shows the skeleton program, verifies it
against the direct O(n²) computation, and reports simulated scaling.

Run:  python examples/nbody_ring.py [n]
"""

import sys

import numpy as np

from repro.apps.nbody import forces_machine, forces_parallel, forces_seq
from repro.machine import AP1000


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    rng = np.random.default_rng(2)
    pos = rng.standard_normal((n, 3))
    mass = rng.uniform(0.5, 2.0, size=n)

    print(f"All-pairs forces for {n} bodies\n")
    ref = forces_seq(pos, mass)
    par = forces_parallel(pos, mass, 8)
    print(f"skeleton program (p=8): max deviation from direct O(n^2) = "
          f"{np.max(np.abs(par - ref)):.2e}")

    print(f"\nsystolic ring on the simulated {AP1000.name}:")
    print(f"   {'procs':>5}  {'runtime (s)':>12}  {'speedup':>8}  {'eff':>5}")
    t1 = None
    for p in (1, 2, 4, 8, 16, 32):
        out, res = forces_machine(pos, mass, p)
        assert np.allclose(out, ref, atol=1e-9)
        t1 = t1 or res.makespan
        sp = t1 / res.makespan
        print(f"   {p:>5}  {res.makespan:>12.4f}  {sp:>8.2f}  {sp / p:>5.0%}")

    print("\nThe SCL structure: iter_for p (map INTERACT . "
          "redistribute [id, rotate 1, id]) over (resident, visiting, forces)")


if __name__ == "__main__":
    main()
