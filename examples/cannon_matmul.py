#!/usr/bin/env python3
"""Cannon's matrix multiplication on a 2-D processor grid.

The workout for the paper's regular communication skeletons: the initial
skew is ``rotate_row (λi.i)`` / ``rotate_col (λj.j)``, and each of the q
steps multiplies local blocks then rotates A-rows and B-columns by one —
no explicit processes or ports anywhere.

Run:  python examples/cannon_matmul.py [n] [q]
"""

import sys

import numpy as np

from repro.apps.matmul import cannon_matmul
from repro.core import RowColBlock, parmap, partition, rotate_col, rotate_row


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    q = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    rng = np.random.default_rng(42)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))

    print(f"Cannon's algorithm: {n}x{n} matrices on a {q}x{q} grid\n")

    C = cannon_matmul(A, B, q)
    err = np.max(np.abs(C - A @ B))
    print(f"max|cannon - numpy| = {err:.2e}")

    print("\nthe data choreography, step by step on block indices:")
    labels = partition(RowColBlock(q, q), np.arange(q * q).reshape(q, q))
    ids = parmap(lambda blk: int(np.asarray(blk)[0, 0]), labels)
    print("  initial A-block grid:      ", ids.to_nested_list())
    skewed = rotate_row(lambda i: i, ids)
    print("  after row skew (A):        ", skewed.to_nested_list())
    print("  after one step rotation:   ",
          rotate_row(lambda _i: 1, skewed).to_nested_list())
    print("  after col skew (B):        ",
          rotate_col(lambda j: j, ids).to_nested_list())


if __name__ == "__main__":
    main()
